package packed

import (
	"bytes"
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	secret := []byte("packed secret sharing amortises storage across k slots")
	for _, p := range []Params{
		{N: 8, T: 2, K: 4},
		{N: 8, T: 4, K: 2},
		{N: 16, T: 4, K: 8},
		{N: 3, T: 1, K: 1}, // degenerates to Shamir t=1... structurally
		{N: 5, T: 2, K: 3},
	} {
		shares, err := Split(secret, p, rand.Reader)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		got, err := Combine(shares[:p.RecoverThreshold()])
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("%+v: mismatch", p)
		}
	}
}

func TestCombineAnySubset(t *testing.T) {
	p := Params{N: 10, T: 3, K: 4}
	secret := make([]byte, 101)
	rand.Read(secret)
	shares, err := Split(secret, p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		idx := rng.Perm(p.N)[:p.RecoverThreshold()]
		sub := make([]Share, len(idx))
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := Combine(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("subset %v mismatch", idx)
		}
	}
}

func TestTooFewShares(t *testing.T) {
	p := Params{N: 8, T: 2, K: 4}
	shares, _ := Split([]byte("abc"), p, rand.Reader)
	if _, err := Combine(shares[:p.RecoverThreshold()-1]); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("expected ErrTooFewShares, got %v", err)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{N: 0, T: 1, K: 1},
		{N: 4, T: 0, K: 1},
		{N: 4, T: 1, K: 0},
		{N: 4, T: 3, K: 2},     // t+k > n
		{N: 200, T: 40, K: 30}, // k+t+n > 256
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%+v: expected ErrInvalidParams, got %v", p, err)
		}
	}
	if err := (Params{N: 8, T: 2, K: 4}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestEmptySecret(t *testing.T) {
	if _, err := Split(nil, Params{N: 8, T: 2, K: 4}, rand.Reader); !errors.Is(err, ErrEmptySecret) {
		t.Fatalf("expected ErrEmptySecret, got %v", err)
	}
}

func TestDuplicateShare(t *testing.T) {
	p := Params{N: 8, T: 2, K: 2}
	shares, _ := Split([]byte("dup"), p, rand.Reader)
	sub := []Share{shares[0], shares[0], shares[1], shares[2]}
	if _, err := Combine(sub); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("expected ErrDuplicateShare, got %v", err)
	}
}

func TestShapeMismatch(t *testing.T) {
	p := Params{N: 8, T: 2, K: 2}
	a, _ := Split([]byte("aaaa"), p, rand.Reader)
	b, _ := Split([]byte("bbbbbbbb"), p, rand.Reader)
	mixed := []Share{a[0], b[1], a[2], a[3]}
	if _, err := Combine(mixed); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("expected ErrShapeMismatch, got %v", err)
	}
}

// TestPrivacyThreshold verifies that t shares are independent of the
// secret, by the same single-byte enumeration argument as the Shamir test:
// with k=1, t=1 and a 1-byte secret, one share must be consistent with
// every possible secret value.
func TestPrivacyThreshold(t *testing.T) {
	p := Params{N: 3, T: 1, K: 1}
	// For every candidate secret s and blinding value b there is a unique
	// degree-1 polynomial through (0, s), (1, b); the share at x=2 is
	// determined. Count consistency of an observed share value.
	shares, err := Split([]byte{0x7E}, p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	obs := shares[0] // point x=2
	count := 0
	for s := 0; s < 256; s++ {
		for b := 0; b < 256; b++ {
			// Linear interpolation at x=2 of (0,s),(1,b) over GF(256):
			// f(x) = s + (s^b)·x  since f(1) = s + (s^b) = b.
			y := byte(s) ^ mulByte(byte(s)^byte(b), obs.X)
			if y == obs.Payload[0] {
				count++
			}
		}
	}
	if count != 256 {
		t.Fatalf("share consistent with %d (secret, blind) pairs, want 256", count)
	}
}

func mulByte(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

func TestStorageOverhead(t *testing.T) {
	p := Params{N: 8, T: 2, K: 4}
	// L = 4096, slot = 1024, total = 8*1024 → 2x
	if got := StorageOverhead(p, 4096); got != 2.0 {
		t.Fatalf("StorageOverhead = %v, want 2.0", got)
	}
	// Shamir-equivalent k=1 costs n×.
	if got := StorageOverhead(Params{N: 8, T: 2, K: 1}, 4096); got != 8.0 {
		t.Fatalf("k=1 overhead = %v, want 8.0", got)
	}
	if StorageOverhead(p, 0) != 0 {
		t.Fatal("zero-length overhead should be 0")
	}
}

func TestShareSizeIsSlotSize(t *testing.T) {
	p := Params{N: 8, T: 2, K: 4}
	secret := make([]byte, 1000)
	shares, _ := Split(secret, p, rand.Reader)
	want := (1000 + 3) / 4
	for _, s := range shares {
		if len(s.Payload) != want {
			t.Fatalf("share payload %d bytes, want %d", len(s.Payload), want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	p := Params{N: 9, T: 3, K: 3}
	f := func(secret []byte, seed int64) bool {
		if len(secret) == 0 {
			return true
		}
		shares, err := Split(secret, p, rand.Reader)
		if err != nil {
			return false
		}
		rng := mrand.New(mrand.NewSource(seed))
		idx := rng.Perm(p.N)[:p.RecoverThreshold()]
		sub := make([]Share, len(idx))
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := Combine(sub)
		return err == nil && bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplit8_2_4_64KiB(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	p := Params{N: 8, T: 2, K: 4}
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, p, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine8_2_4_64KiB(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	p := Params{N: 8, T: 2, K: 4}
	shares, _ := Split(secret, p, rand.Reader)
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:p.RecoverThreshold()]); err != nil {
			b.Fatal(err)
		}
	}
}
