// Package parallel provides the bounded fork-join helpers the coding hot
// paths (rs, shamir, packed) use to spread encode/decode work across
// goroutines.
//
// The model is deliberately minimal: a chunked loop (For) and a bounded
// task runner (Do), both capped by a worker count that defaults to
// runtime.GOMAXPROCS(0). Work is partitioned statically into contiguous
// chunks — coding workloads are uniform per byte, so static partitioning
// beats a work-stealing queue and keeps each worker streaming over one
// contiguous byte range (cache-friendly, no false sharing on shard
// boundaries). Callers express a minimum grain so small payloads never
// pay goroutine overhead: with n <= grain or workers == 1 the loop runs
// inline on the calling goroutine.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a requested parallelism degree: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged. This is the
// single knob the WithParallelism options across rs/shamir/packed/core
// funnel into.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For splits the index range [0, n) into at most p contiguous chunks of
// at least grain elements each and runs fn(lo, hi) on every chunk, using
// up to p goroutines (p <= 0 means GOMAXPROCS). fn is called exactly once
// per chunk, chunks are disjoint and cover [0, n), and For returns only
// after every call has finished. fn must be safe to run concurrently on
// disjoint ranges. When only one chunk results, fn runs inline.
func For(p, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p = Workers(p)
	chunks := (n + grain - 1) / grain
	if chunks > p {
		chunks = p
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for i := 1; i < chunks; i++ {
		lo, hi := Span(n, chunks, i)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	lo, hi := Span(n, chunks, 0)
	fn(lo, hi)
	wg.Wait()
}

// Span returns the half-open range [lo, hi) of chunk i when [0, n) is
// split into k balanced contiguous chunks (sizes differ by at most one).
func Span(n, k, i int) (lo, hi int) {
	q, r := n/k, n%k
	lo = i * q
	if i < r {
		lo += i
	} else {
		lo += r
	}
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// Do runs the given functions with at most p executing concurrently
// (p <= 0 means GOMAXPROCS) and returns when all have finished.
func Do(p int, fns ...func()) {
	if len(fns) == 0 {
		return
	}
	p = Workers(p)
	if p == 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	sem := make(chan struct{}, p)
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		sem <- struct{}{}
		go func(fn func()) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn()
		}(fn)
	}
	wg.Wait()
}
