// Package parallel provides the bounded fork-join helpers the coding hot
// paths (rs, shamir, packed) use to spread encode/decode work across
// goroutines.
//
// The model is deliberately minimal: a chunked loop (For) and a bounded
// task runner (Do), both capped by a worker count that defaults to
// runtime.GOMAXPROCS(0). Work is partitioned statically into contiguous
// chunks — coding workloads are uniform per byte, so static partitioning
// beats a work-stealing queue and keeps each worker streaming over one
// contiguous byte range (cache-friendly, no false sharing on shard
// boundaries). Callers express a minimum grain so small payloads never
// pay goroutine overhead: with n <= grain or workers == 1 the loop runs
// inline on the calling goroutine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree: values <= 0 select
// runtime.GOMAXPROCS(0), and any request is clamped at GOMAXPROCS — the
// fork-join helpers here run CPU-bound coding kernels, so workers beyond
// the scheduler's parallelism are pure goroutine churn (visible as
// per-put goroutine spawn storms in pprof when tiny batched stripes ask
// for W=64 on a small box). This is the single knob the WithParallelism
// options across rs/shamir/packed/core funnel into; the per-call chunk
// count in For supplies the third clamp term, min(requested, GOMAXPROCS,
// rows).
func Workers(n int) int {
	if g := runtime.GOMAXPROCS(0); n <= 0 || n > g {
		return g
	}
	return n
}

// For splits the index range [0, n) into at most p contiguous chunks of
// at least grain elements each and runs fn(lo, hi) on every chunk, using
// up to p goroutines (p <= 0 means GOMAXPROCS). fn is called exactly once
// per chunk, chunks are disjoint and cover [0, n), and For returns only
// after every call has finished. fn must be safe to run concurrently on
// disjoint ranges. When only one chunk results, fn runs inline.
func For(p, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p = Workers(p)
	chunks := (n + grain - 1) / grain
	if chunks > p {
		chunks = p
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for i := 1; i < chunks; i++ {
		lo, hi := Span(n, chunks, i)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	lo, hi := Span(n, chunks, 0)
	fn(lo, hi)
	wg.Wait()
}

// Span returns the half-open range [lo, hi) of chunk i when [0, n) is
// split into k balanced contiguous chunks (sizes differ by at most one).
func Span(n, k, i int) (lo, hi int) {
	q, r := n/k, n%k
	lo = i * q
	if i < r {
		lo += i
	} else {
		lo += r
	}
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}

// Do runs the given functions with at most p executing concurrently
// (p <= 0 means GOMAXPROCS) and returns when all have finished. Exactly
// min(p, len(fns)) goroutines are spawned (one of them the caller), each
// pulling tasks from a shared index — the seed version spawned one
// goroutine per task and merely bounded concurrency with a semaphore,
// which showed up as per-put goroutine churn under profiling.
func Do(p int, fns ...func()) {
	if len(fns) == 0 {
		return
	}
	p = Workers(p)
	if p > len(fns) {
		p = len(fns)
	}
	if p == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(fns) {
				return
			}
			fns[i]()
		}
	}
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for i := 1; i < p; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// Pipeline runs a two-stage producer/consumer pipeline over a bounded
// channel of depth items: produce emits values (encode), consume drains
// them in emission order (stage/disperse), and the bound keeps at most
// depth values in flight — the backpressure that lets dispersal of chunk
// i overlap encoding of chunk i+1 without buffering a whole object.
//
// produce runs on its own goroutine; consume runs on the caller's. emit
// returns false once the consumer has failed, telling the producer to
// stop early. Pipeline returns the consumer's error if any, else the
// producer's. Values emitted after a consumer failure are discarded, and
// drop — when non-nil — is called on each discarded value so pooled
// resources can be reclaimed; it may run on either goroutine and must be
// safe for concurrent use.
func Pipeline[T any](depth int, produce func(emit func(T) bool) error, consume func(T) error, drop func(T)) error {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan T, depth)
	stop := make(chan struct{})
	prodErr := make(chan error, 1)
	go func() {
		defer close(ch)
		prodErr <- produce(func(v T) bool {
			select {
			case ch <- v:
				return true
			case <-stop:
				if drop != nil {
					drop(v)
				}
				return false
			}
		})
	}()
	var consErr error
	for v := range ch {
		if consErr != nil {
			if drop != nil {
				drop(v)
			}
			continue
		}
		if err := consume(v); err != nil {
			consErr = err
			close(stop)
		}
	}
	if err := <-prodErr; consErr == nil && err != nil {
		return err
	}
	return consErr
}
