package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

// TestForCoversRangeExactlyOnce checks that every index is visited exactly
// once for a grid of (p, n, grain) combinations.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
			for _, grain := range []int{0, 1, 16, 1024, 10000} {
				counts := make([]int32, n)
				For(p, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("For(p=%d, n=%d, grain=%d): bad range [%d,%d)", p, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("For(p=%d, n=%d, grain=%d): index %d visited %d times", p, n, grain, i, c)
					}
				}
			}
		}
	}
}

// TestForGrainKeepsSmallWorkSerial verifies that n <= grain runs as one
// inline chunk (observable as a single call covering the whole range).
func TestForGrainKeepsSmallWorkSerial(t *testing.T) {
	var calls int32
	For(8, 100, 1000, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 100 {
			t.Errorf("expected single chunk [0,100), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 chunk, got %d", calls)
	}
}

func TestSpanPartitions(t *testing.T) {
	for _, n := range []int{1, 2, 10, 17, 1000} {
		for k := 1; k <= n && k < 20; k++ {
			prev := 0
			for i := 0; i < k; i++ {
				lo, hi := Span(n, k, i)
				if lo != prev {
					t.Fatalf("Span(%d,%d,%d): lo=%d, want %d", n, k, i, lo, prev)
				}
				if sz := hi - lo; sz < n/k || sz > n/k+1 {
					t.Fatalf("Span(%d,%d,%d): unbalanced size %d", n, k, i, sz)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Span(%d,%d,·): chunks end at %d, want %d", n, k, prev, n)
			}
		}
	}
}

func TestDo(t *testing.T) {
	var sum int64
	fns := make([]func(), 37)
	for i := range fns {
		i := i
		fns[i] = func() { atomic.AddInt64(&sum, int64(i)) }
	}
	Do(4, fns...)
	if sum != 37*36/2 {
		t.Fatalf("Do: sum = %d, want %d", sum, 37*36/2)
	}
	// Serial path.
	sum = 0
	Do(1, fns...)
	if sum != 37*36/2 {
		t.Fatalf("Do serial: sum = %d, want %d", sum, 37*36/2)
	}
}
