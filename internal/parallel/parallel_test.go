package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	g := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != g {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, g)
	}
	if got := Workers(-3); got != g {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, g)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	// Requests beyond the scheduler's parallelism clamp at GOMAXPROCS —
	// extra workers on a CPU-bound kernel are pure goroutine churn.
	want := 7
	if want > g {
		want = g
	}
	if got := Workers(7); got != want {
		t.Fatalf("Workers(7) = %d, want %d (GOMAXPROCS=%d)", got, want, g)
	}
	if got := Workers(1 << 20); got != g {
		t.Fatalf("Workers(1<<20) = %d, want %d", got, g)
	}
}

// TestForCoversRangeExactlyOnce checks that every index is visited exactly
// once for a grid of (p, n, grain) combinations.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
			for _, grain := range []int{0, 1, 16, 1024, 10000} {
				counts := make([]int32, n)
				For(p, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("For(p=%d, n=%d, grain=%d): bad range [%d,%d)", p, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("For(p=%d, n=%d, grain=%d): index %d visited %d times", p, n, grain, i, c)
					}
				}
			}
		}
	}
}

// TestForGrainKeepsSmallWorkSerial verifies that n <= grain runs as one
// inline chunk (observable as a single call covering the whole range).
func TestForGrainKeepsSmallWorkSerial(t *testing.T) {
	var calls int32
	For(8, 100, 1000, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 100 {
			t.Errorf("expected single chunk [0,100), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 chunk, got %d", calls)
	}
}

func TestSpanPartitions(t *testing.T) {
	for _, n := range []int{1, 2, 10, 17, 1000} {
		for k := 1; k <= n && k < 20; k++ {
			prev := 0
			for i := 0; i < k; i++ {
				lo, hi := Span(n, k, i)
				if lo != prev {
					t.Fatalf("Span(%d,%d,%d): lo=%d, want %d", n, k, i, lo, prev)
				}
				if sz := hi - lo; sz < n/k || sz > n/k+1 {
					t.Fatalf("Span(%d,%d,%d): unbalanced size %d", n, k, i, sz)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Span(%d,%d,·): chunks end at %d, want %d", n, k, prev, n)
			}
		}
	}
}

func TestDo(t *testing.T) {
	var sum int64
	fns := make([]func(), 37)
	for i := range fns {
		i := i
		fns[i] = func() { atomic.AddInt64(&sum, int64(i)) }
	}
	Do(4, fns...)
	if sum != 37*36/2 {
		t.Fatalf("Do: sum = %d, want %d", sum, 37*36/2)
	}
	// Serial path.
	sum = 0
	Do(1, fns...)
	if sum != 37*36/2 {
		t.Fatalf("Do serial: sum = %d, want %d", sum, 37*36/2)
	}
}

// TestDoBoundsGoroutines verifies Do spawns at most min(p, len(fns))-1
// extra goroutines (the caller is one worker): concurrency observed from
// inside the tasks never exceeds the bound.
func TestDoBoundsGoroutines(t *testing.T) {
	const p = 2
	var cur, peak int64
	fns := make([]func(), 64)
	for i := range fns {
		fns[i] = func() {
			c := atomic.AddInt64(&cur, 1)
			for {
				old := atomic.LoadInt64(&peak)
				if c <= old || atomic.CompareAndSwapInt64(&peak, old, c) {
					break
				}
			}
			atomic.AddInt64(&cur, -1)
		}
	}
	Do(p, fns...)
	bound := int64(p)
	if g := int64(runtime.GOMAXPROCS(0)); bound > g {
		bound = g
	}
	if peak > bound {
		t.Fatalf("Do(%d): observed concurrency %d > bound %d", p, peak, bound)
	}
	// One task with huge p must not panic or deadlock.
	ran := false
	Do(1<<20, func() { ran = true })
	if !ran {
		t.Fatal("single fn not run")
	}
}

func TestPipelineOrdered(t *testing.T) {
	var got []int
	err := Pipeline(2,
		func(emit func(int) bool) error {
			for i := 0; i < 100; i++ {
				if !emit(i) {
					t.Error("emit rejected without consumer failure")
				}
			}
			return nil
		},
		func(v int) error {
			got = append(got, v)
			return nil
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("consumed %d values", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestPipelineProducerError(t *testing.T) {
	wantErr := errors.New("produce failed")
	n := 0
	err := Pipeline(4,
		func(emit func(int) bool) error {
			emit(1)
			emit(2)
			return wantErr
		},
		func(v int) error { n++; return nil },
		nil,
	)
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if n != 2 {
		t.Fatalf("consumed %d before producer error surfaced, want 2", n)
	}
}

// TestPipelineConsumerError checks that a consumer failure stops the
// producer early, wins over the producer's error, and routes every
// unconsumed value through drop (pooled-buffer reclamation).
func TestPipelineConsumerError(t *testing.T) {
	wantErr := errors.New("consume failed")
	// drop runs on whichever goroutine discards the value (producer via a
	// rejected emit, consumer while draining), so count atomically.
	var emitted, dropped, consumed atomic.Int64
	err := Pipeline(1,
		func(emit func(int) bool) error {
			for i := 0; i < 1000; i++ {
				if !emit(i) {
					return errors.New("stopped early")
				}
				emitted.Add(1)
			}
			return nil
		},
		func(v int) error {
			consumed.Add(1)
			if v == 3 {
				return wantErr
			}
			return nil
		},
		func(int) { dropped.Add(1) },
	)
	if err != wantErr {
		t.Fatalf("err = %v, want consumer error %v", err, wantErr)
	}
	if emitted.Load() >= 1000 {
		t.Fatal("producer ran to completion despite consumer failure")
	}
	// Everything emitted was either consumed or dropped — nothing leaked.
	// (+1: the in-flight value the rejected emit itself dropped.)
	if consumed.Load()+dropped.Load() != emitted.Load()+1 {
		t.Fatalf("emitted=%d (+1 in-flight) consumed=%d dropped=%d: values leaked",
			emitted.Load(), consumed.Load(), dropped.Load())
	}
}
