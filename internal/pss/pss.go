// Package pss implements proactive secret sharing: the periodic
// re-randomisation of shares that defeats the mobile adversary of
// Ostrovsky & Yung, and the verifiable share *redistribution* of Wong,
// Wang & Wing that additionally lets the shareholder committee change
// size and threshold.
//
// The paper (§3.2) identifies proactive secret-shared datastores as "the
// leading (and only) approach" for long-term information-theoretic
// confidentiality at rest — and immediately names their two costs: every
// renewal round is all-to-all (Θ(n²) messages carrying share-sized
// payloads), and renewal of many objects in a short window hits the same
// I/O wall as re-encryption. This package implements the protocols
// faithfully enough to *measure* those costs (experiment E6 in DESIGN.md).
//
// Two committee types are provided:
//
//   - DataCommittee refreshes bulk GF(2^8) Shamir shares (Herzberg-style
//     zero-sharing). Dealings carry SHA-256 commitments that let receivers
//     detect substitution, and an explicit audit step reconstructs a
//     dealing to verify it shared zero — the "verifiable secret sharing as
//     a sub-protocol" the paper describes, instantiated with hash
//     commitments (computational integrity is acceptable long-term per
//     §3.3, since it only needs to hold until the next renewal).
//
//   - ScalarCommittee (scalar.go) refreshes scalar secrets in Z_q under
//     full Pedersen-VSS verification, including a zero-knowledge proof
//     that renewal dealings share zero (opening only the blinding
//     exponent of C_0). This is the information-theoretically hiding
//     construction LINCOS-class systems use for keys.
package pss

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"securearchive/internal/gf256"
	"securearchive/internal/shamir"
)

// Errors returned by this package.
var (
	ErrInvalidParams  = errors.New("pss: invalid parameters")
	ErrCommitMismatch = errors.New("pss: dealing does not match its commitment")
	ErrNotZeroSharing = errors.New("pss: dealing does not share zero")
	ErrWrongCommittee = errors.New("pss: share does not belong to this committee")
	ErrTooFewHolders  = errors.New("pss: not enough holders to reconstruct")
	ErrAuditTooSmall  = errors.New("pss: audit requires more opened subshares")
)

// CommStats accumulates protocol traffic, the measurable cost the paper
// warns about.
type CommStats struct {
	Messages  int   // point-to-point messages sent
	Bytes     int64 // payload bytes across all messages
	Broadcast int64 // bytes of broadcast (commitments)
	Rounds    int   // protocol rounds executed
}

func (s *CommStats) add(o CommStats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Broadcast += o.Broadcast
	s.Rounds += o.Rounds
}

// DataCommittee holds one secret-shared object across n simulated
// shareholders and supports proactive renewal and redistribution.
// It is a protocol simulator: all "holders" live in one process, but
// every byte that would cross the network is accounted in Stats.
type DataCommittee struct {
	N, T      int
	SecretLen int
	Epoch     int
	Shares    []shamir.Share // index i belongs to holder i
	Stats     CommStats
}

// NewDataCommittee splits secret across n holders with threshold t.
func NewDataCommittee(secret []byte, n, t int, rnd io.Reader) (*DataCommittee, error) {
	shares, err := shamir.Split(secret, n, t, rnd)
	if err != nil {
		return nil, err
	}
	return &DataCommittee{N: n, T: t, SecretLen: len(secret), Shares: shares}, nil
}

// Reconstruct recovers the secret from the holders with the given indices
// (0-based). At least T distinct holders are required.
func (c *DataCommittee) Reconstruct(holders ...int) ([]byte, error) {
	if len(holders) < c.T {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewHolders, len(holders), c.T)
	}
	sel := make([]shamir.Share, 0, len(holders))
	for _, h := range holders {
		if h < 0 || h >= c.N {
			return nil, fmt.Errorf("%w: holder %d", ErrWrongCommittee, h)
		}
		sel = append(sel, c.Shares[h])
	}
	return shamir.Combine(sel)
}

// Dealing is one holder's renewal contribution: a zero-sharing δ with
// δ(0) = 0, one subshare per holder, plus broadcast hash commitments.
type Dealing struct {
	Dealer      int
	SubShares   []shamir.Share      // SubShares[j] goes to holder j
	Commitments [][sha256.Size]byte // Commitments[j] = H(SubShares[j])
}

// commitSubShare hashes a subshare for the dealing broadcast.
func commitSubShare(s shamir.Share) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{s.X, s.Threshold})
	h.Write(s.Payload)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// deal produces holder d's zero-sharing for the current committee.
func (c *DataCommittee) deal(d int, rnd io.Reader) (Dealing, error) {
	zero := make([]byte, c.SecretLen)
	sub, err := shamir.Split(zero, c.N, c.T, rnd)
	if err != nil {
		return Dealing{}, err
	}
	dl := Dealing{Dealer: d, SubShares: sub, Commitments: make([][sha256.Size]byte, c.N)}
	for j := range sub {
		dl.Commitments[j] = commitSubShare(sub[j])
	}
	return dl, nil
}

// VerifyDealingFor checks that the subshare addressed to holder j matches
// the dealer's broadcast commitment. This is what each honest holder runs
// on receipt; it detects substitution in transit or a dealer equivocating
// between the broadcast and the private message.
func VerifyDealingFor(dl Dealing, j int) error {
	if j < 0 || j >= len(dl.SubShares) {
		return fmt.Errorf("%w: holder %d", ErrWrongCommittee, j)
	}
	if commitSubShare(dl.SubShares[j]) != dl.Commitments[j] {
		return fmt.Errorf("%w: dealer %d → holder %d", ErrCommitMismatch, dl.Dealer, j)
	}
	return nil
}

// AuditDealing reconstructs the dealt polynomial from opened subshares and
// verifies it shares zero. It needs at least t+1 subshares: t to
// interpolate and at least one more to confirm polynomial degree (the
// shamir surplus-consistency check). This is the dispute-phase audit: it
// destroys the dealing's secrecy, which is fine because a disputed dealing
// is discarded.
func AuditDealing(dl Dealing, t int, secretLen int) error {
	if len(dl.SubShares) < t+1 {
		return fmt.Errorf("%w: have %d, need %d", ErrAuditTooSmall, len(dl.SubShares), t+1)
	}
	val, err := shamir.Combine(dl.SubShares)
	if err != nil {
		return fmt.Errorf("pss: audit reconstruction: %w", err)
	}
	for i, b := range val {
		if b != 0 {
			return fmt.Errorf("%w: byte %d is %#x", ErrNotZeroSharing, i, b)
		}
	}
	if len(val) != secretLen {
		return fmt.Errorf("%w: dealt length %d, want %d", ErrNotZeroSharing, len(val), secretLen)
	}
	return nil
}

// Renew executes one Herzberg renewal round: every holder deals a
// zero-sharing, every holder verifies what it received against the
// broadcast commitments, and each share becomes the sum of the old share
// and all received subshares. Old shares (and any shares an adversary
// stole in earlier epochs) become useless: they lie on a polynomial that
// no longer exists.
func (c *DataCommittee) Renew(rnd io.Reader) error {
	dealings := make([]Dealing, c.N)
	for d := 0; d < c.N; d++ {
		dl, err := c.deal(d, rnd)
		if err != nil {
			return err
		}
		dealings[d] = dl
		// Traffic: n-1 private subshare messages + commitment broadcast.
		c.Stats.Messages += c.N - 1
		c.Stats.Bytes += int64((c.N - 1) * (len(dl.SubShares[0].Payload) + 2))
		c.Stats.Broadcast += int64(c.N * sha256.Size)
	}
	// Receipt verification.
	for j := 0; j < c.N; j++ {
		for d := 0; d < c.N; d++ {
			if err := VerifyDealingFor(dealings[d], j); err != nil {
				return err
			}
		}
	}
	// Share update: share_j += Σ_d δ_d(x_j).
	for j := 0; j < c.N; j++ {
		p := c.Shares[j].Payload
		for d := 0; d < c.N; d++ {
			sub := dealings[d].SubShares[j].Payload
			for k := range p {
				p[k] ^= sub[k]
			}
		}
	}
	c.Epoch++
	c.Stats.Rounds++
	return nil
}

// Redistribute runs the Wong–Wang–Wing verifiable redistribution protocol
// to a fresh committee with parameters (nNew, tNew): each old holder
// sub-shares its share under the new parameters; each new holder combines
// subshares from tOld old holders using Lagrange coefficients at zero.
// The old committee's shares are invalidated (zeroed) on success: a mobile
// adversary must now start corrupting the new committee from scratch, and
// the sharing parameters can grow or shrink with the threat model.
func (c *DataCommittee) Redistribute(nNew, tNew int, rnd io.Reader) (*DataCommittee, error) {
	if tNew < 1 || tNew > nNew || nNew > shamir.MaxShares {
		return nil, fmt.Errorf("%w: nNew=%d tNew=%d", ErrInvalidParams, nNew, tNew)
	}
	// Old holders participating: the first tOld (any tOld would do).
	dealers := c.Shares[:c.T]
	xsOld := make([]byte, c.T)
	for i, s := range dealers {
		xsOld[i] = s.X
	}

	// Each dealer sub-shares its payload under (tNew, nNew).
	subs := make([][]shamir.Share, c.T) // subs[i][j]: dealer i → new holder j
	for i, ds := range dealers {
		ss, err := shamir.Split(ds.Payload, nNew, tNew, rnd)
		if err != nil {
			return nil, err
		}
		subs[i] = ss
		c.Stats.Messages += nNew
		c.Stats.Bytes += int64(nNew * (len(ds.Payload) + 2))
		c.Stats.Broadcast += int64(nNew * sha256.Size) // commitment broadcast
	}

	// New holder j combines: newShare_j = Σ_i λ_i · sub_{i,j}, where λ_i
	// are the old committee's Lagrange coefficients at 0. Linearity makes
	// the result a valid (tNew, nNew) sharing of the original secret.
	lambda := lagrangeAtZero(xsOld)
	newShares := make([]shamir.Share, nNew)
	for j := 0; j < nNew; j++ {
		payload := make([]byte, c.SecretLen)
		for i := range dealers {
			mulAcc(lambda[i], subs[i][j].Payload, payload)
		}
		newShares[j] = shamir.Share{X: byte(j + 1), Threshold: byte(tNew), Payload: payload}
	}

	// Invalidate old shares: a holder that kept them learns nothing new,
	// but the simulation models deletion, matching the protocol.
	for i := range c.Shares {
		for k := range c.Shares[i].Payload {
			c.Shares[i].Payload[k] = 0
		}
	}

	out := &DataCommittee{
		N: nNew, T: tNew, SecretLen: c.SecretLen,
		Epoch: c.Epoch + 1, Shares: newShares, Stats: c.Stats,
	}
	out.Stats.Rounds++
	return out, nil
}

// RenewalTraffic predicts the bytes one renewal round moves for a
// committee of n holders protecting an object of objLen bytes — the
// analytic Θ(n²·L) the paper cites, exposed so the cost-model package can
// extrapolate to archive scale without running the protocol.
func RenewalTraffic(n int, objLen int) int64 {
	return int64(n*(n-1))*int64(objLen+2) + int64(n*n*sha256.Size)
}

func lagrangeAtZero(xs []byte) []byte {
	return gf256.LagrangeCoeffs(xs, 0)
}

// mulAcc computes dst[i] ^= c·src[i].
func mulAcc(c byte, src, dst []byte) {
	gf256.MulSlice(c, src, dst)
}
