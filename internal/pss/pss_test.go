package pss

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/shamir"
)

func TestDataCommitteeReconstruct(t *testing.T) {
	secret := []byte("proactively protected archival object")
	c, err := NewDataCommittee(secret, 8, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Reconstruct(0, 2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("reconstruction mismatch")
	}
	if _, err := c.Reconstruct(0, 1); !errors.Is(err, ErrTooFewHolders) {
		t.Fatalf("too few holders: %v", err)
	}
	if _, err := c.Reconstruct(0, 1, 2, 99); !errors.Is(err, ErrWrongCommittee) {
		t.Fatalf("bad index: %v", err)
	}
}

func TestRenewPreservesSecret(t *testing.T) {
	secret := []byte("the secret must survive refresh")
	c, err := NewDataCommittee(secret, 6, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		if err := c.Renew(rand.Reader); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, err := c.Reconstruct(1, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("round %d: secret changed", round)
		}
	}
	if c.Epoch != 5 {
		t.Fatalf("epoch = %d, want 5", c.Epoch)
	}
}

func TestRenewChangesShares(t *testing.T) {
	secret := []byte("shares must be re-randomised")
	c, _ := NewDataCommittee(secret, 5, 3, rand.Reader)
	before := make([][]byte, c.N)
	for i := range c.Shares {
		before[i] = append([]byte(nil), c.Shares[i].Payload...)
	}
	if err := c.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range c.Shares {
		if !bytes.Equal(before[i], c.Shares[i].Payload) {
			changed++
		}
	}
	if changed != c.N {
		t.Fatalf("only %d/%d shares changed", changed, c.N)
	}
}

// TestStolenSharesUselessAfterRenew is the mobile-adversary experiment in
// miniature: t-1 shares stolen before a renewal plus t-1 stolen after do
// NOT combine to reconstruct, because they lie on different polynomials.
func TestStolenSharesUselessAfterRenew(t *testing.T) {
	secret := []byte("harvested shares go stale")
	c, _ := NewDataCommittee(secret, 6, 3, rand.Reader)
	stolenEarly := []shamir.Share{c.Shares[0].Clone(), c.Shares[1].Clone()} // t-1 shares
	if err := c.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	stolenLate := c.Shares[2].Clone() // 1 more share, different epoch
	mixed := []shamir.Share{stolenEarly[0], stolenEarly[1], stolenLate}
	got, err := shamir.Combine(mixed)
	if err == nil && bytes.Equal(got, secret) {
		t.Fatal("cross-epoch shares reconstructed the secret: renewal is broken")
	}
	// Whereas 3 same-epoch shares do reconstruct.
	got2, err := c.Reconstruct(2, 3, 4)
	if err != nil || !bytes.Equal(got2, secret) {
		t.Fatal("same-epoch reconstruction failed")
	}
}

func TestVerifyDealingDetectsSubstitution(t *testing.T) {
	c, _ := NewDataCommittee([]byte("x"), 4, 2, rand.Reader)
	dl, err := c.deal(0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDealingFor(dl, 1); err != nil {
		t.Fatalf("honest dealing rejected: %v", err)
	}
	dl.SubShares[1].Payload[0] ^= 1
	if err := VerifyDealingFor(dl, 1); !errors.Is(err, ErrCommitMismatch) {
		t.Fatalf("substituted subshare accepted: %v", err)
	}
	if err := VerifyDealingFor(dl, 99); !errors.Is(err, ErrWrongCommittee) {
		t.Fatalf("bad index: %v", err)
	}
}

func TestAuditDealing(t *testing.T) {
	c, _ := NewDataCommittee([]byte("audit me"), 5, 3, rand.Reader)
	dl, _ := c.deal(2, rand.Reader)
	if err := AuditDealing(dl, c.T, c.SecretLen); err != nil {
		t.Fatalf("honest zero-dealing failed audit: %v", err)
	}
	// A cheating dealer shares a non-zero value.
	cheat, _ := shamir.Split([]byte("not zero"), 5, 3, rand.Reader)
	bad := Dealing{Dealer: 2, SubShares: cheat, Commitments: dl.Commitments}
	if err := AuditDealing(bad, c.T, c.SecretLen); !errors.Is(err, ErrNotZeroSharing) {
		t.Fatalf("non-zero dealing passed audit: %v", err)
	}
	if err := AuditDealing(Dealing{SubShares: dl.SubShares[:2]}, c.T, c.SecretLen); !errors.Is(err, ErrAuditTooSmall) {
		t.Fatalf("audit with too few shares: %v", err)
	}
}

func TestRedistributeGrowCommittee(t *testing.T) {
	secret := []byte("grow from (3,5) to (5,9)")
	c, _ := NewDataCommittee(secret, 5, 3, rand.Reader)
	c2, err := c.Redistribute(9, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if c2.N != 9 || c2.T != 5 {
		t.Fatalf("new committee is (%d,%d)", c2.T, c2.N)
	}
	got, err := c2.Reconstruct(0, 2, 4, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("secret lost in redistribution")
	}
}

func TestRedistributeShrinkCommittee(t *testing.T) {
	secret := []byte("shrink from (4,8) to (2,3)")
	c, _ := NewDataCommittee(secret, 8, 4, rand.Reader)
	c2, err := c.Redistribute(3, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Reconstruct(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("secret lost in shrink")
	}
}

func TestRedistributeInvalidatesOldShares(t *testing.T) {
	secret := []byte("old committee is dead")
	c, _ := NewDataCommittee(secret, 5, 3, rand.Reader)
	old := []shamir.Share{c.Shares[0].Clone(), c.Shares[1].Clone(), c.Shares[2].Clone()}
	_ = old
	if _, err := c.Redistribute(5, 3, rand.Reader); err != nil {
		t.Fatal(err)
	}
	for i := range c.Shares {
		for _, b := range c.Shares[i].Payload {
			if b != 0 {
				t.Fatal("old share not zeroed after redistribution")
			}
		}
	}
}

func TestRedistributeParamValidation(t *testing.T) {
	c, _ := NewDataCommittee([]byte("x"), 4, 2, rand.Reader)
	if _, err := c.Redistribute(3, 4, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t>n: %v", err)
	}
	if _, err := c.Redistribute(0, 0, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("zero: %v", err)
	}
}

func TestCommStatsAccounting(t *testing.T) {
	const n, L = 6, 100
	secret := make([]byte, L)
	c, _ := NewDataCommittee(secret, n, 3, rand.Reader)
	if err := c.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Rounds != 1 {
		t.Fatalf("rounds = %d", c.Stats.Rounds)
	}
	wantMsgs := n * (n - 1)
	if c.Stats.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d", c.Stats.Messages, wantMsgs)
	}
	wantBytes := int64(n * (n - 1) * (L + 2))
	if c.Stats.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", c.Stats.Bytes, wantBytes)
	}
	if got := RenewalTraffic(n, L); got != wantBytes+int64(n*n*32) {
		t.Fatalf("RenewalTraffic = %d, want %d", got, wantBytes+int64(n*n*32))
	}
}

func TestRenewalTrafficQuadratic(t *testing.T) {
	// Doubling n should roughly quadruple traffic (Θ(n²) claim, E6).
	t8 := RenewalTraffic(8, 4096)
	t16 := RenewalTraffic(16, 4096)
	ratio := float64(t16) / float64(t8)
	if ratio < 3.5 || ratio > 4.6 {
		t.Fatalf("traffic ratio for n 8→16 is %.2f, want ≈4", ratio)
	}
}

func BenchmarkRenew8_4KiB(b *testing.B) {
	secret := make([]byte, 4096)
	c, _ := NewDataCommittee(secret, 8, 4, rand.Reader)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Renew(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRedistribute8to12_4KiB(b *testing.B) {
	secret := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, _ := NewDataCommittee(secret, 8, 4, rand.Reader)
		b.StartTimer()
		if _, err := c.Redistribute(12, 6, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
