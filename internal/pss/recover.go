package pss

import (
	"fmt"
	"io"

	"securearchive/internal/gf256"
	"securearchive/internal/shamir"
)

// RecoverShare rebuilds the share of a crashed or wiped holder without
// exposing the secret OR the helpers' shares: the blinded share-recovery
// sub-protocol of proactive schemes (POTSHARDS calls the capability
// "disaster recovery"; Wong et al. require it for redistribution with
// departed members).
//
// Protocol: t helper holders agree on a random blinding polynomial r of
// degree ≤ t−1 with r(x_lost) = 0. Each helper i sends the single value
// f(x_i) + r(x_i) to the recovering node, which interpolates the t
// blinded points at x_lost and obtains f(x_lost) + 0. Because r is
// otherwise random, the t−1 values any observer (including the recovering
// node) sees are uniform: nothing about f beyond f(x_lost) leaks.
//
// The rebuilt share is written back into the committee; helpers are the
// first t holders other than lost. Traffic is metered in Stats.
func (c *DataCommittee) RecoverShare(lost int, rnd io.Reader) error {
	if lost < 0 || lost >= c.N {
		return fmt.Errorf("%w: holder %d", ErrWrongCommittee, lost)
	}
	xLost := c.Shares[lost].X

	// Helpers: first t holders that are not the lost one.
	helpers := make([]int, 0, c.T)
	for i := 0; i < c.N && len(helpers) < c.T; i++ {
		if i != lost {
			helpers = append(helpers, i)
		}
	}
	if len(helpers) < c.T {
		return fmt.Errorf("%w: need %d helpers", ErrTooFewHolders, c.T)
	}

	// Blinding polynomial r: degree ≤ t−1, r(xLost) = 0, random at the
	// first t−1 helper points; its value at the last helper point follows
	// by interpolation.
	basisX := make([]byte, c.T) // xLost plus t−1 helper points
	basisX[0] = xLost
	basisY := make([][]byte, c.T)
	basisY[0] = make([]byte, c.SecretLen) // r(xLost) = 0
	for k := 1; k < c.T; k++ {
		basisX[k] = c.Shares[helpers[k-1]].X
		v := make([]byte, c.SecretLen)
		if _, err := io.ReadFull(rnd, v); err != nil {
			return fmt.Errorf("pss: reading randomness: %w", err)
		}
		basisY[k] = v
	}
	// Evaluate r at every helper point.
	rAt := func(x byte) []byte {
		lc := gf256.LagrangeCoeffs(basisX, x)
		out := make([]byte, c.SecretLen)
		for k := range basisX {
			gf256.MulSlice(lc[k], basisY[k], out)
		}
		return out
	}

	// Each helper sends y_i = f(x_i) + r(x_i).
	blinded := make([]shamir.Share, c.T)
	for k, h := range helpers {
		hx := c.Shares[h].X
		rv := rAt(hx)
		y := make([]byte, c.SecretLen)
		for j := range y {
			y[j] = c.Shares[h].Payload[j] ^ rv[j]
		}
		blinded[k] = shamir.Share{X: hx, Threshold: byte(c.T), Payload: y}
		c.Stats.Messages++
		c.Stats.Bytes += int64(c.SecretLen + 2)
	}

	// The recovering node interpolates at xLost: f(xLost) + r(xLost) =
	// f(xLost).
	payload, err := shamir.CombineAt(blinded, xLost)
	if err != nil {
		return fmt.Errorf("pss: recovery interpolation: %w", err)
	}
	c.Shares[lost] = shamir.Share{X: xLost, Threshold: byte(c.T), Payload: payload}
	return nil
}
