package pss

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"securearchive/internal/group"
)

func TestRecoverShareRebuildsLostHolder(t *testing.T) {
	secret := []byte("lost share, recovered without exposure")
	c, err := NewDataCommittee(secret, 6, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	original := c.Shares[4].Clone()
	// Wipe holder 4.
	for i := range c.Shares[4].Payload {
		c.Shares[4].Payload[i] = 0
	}
	if err := c.RecoverShare(4, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Shares[4].Payload, original.Payload) {
		t.Fatal("recovered share differs from the original")
	}
	// Committee still reconstructs, including through the recovered node.
	got, err := c.Reconstruct(2, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("secret lost after recovery")
	}
}

func TestRecoverShareAfterRenewals(t *testing.T) {
	secret := []byte("recovery composes with refresh")
	c, _ := NewDataCommittee(secret, 5, 3, rand.Reader)
	for r := 0; r < 3; r++ {
		if err := c.Renew(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	want := c.Shares[0].Clone()
	for i := range c.Shares[0].Payload {
		c.Shares[0].Payload[i] = 0xFF
	}
	if err := c.RecoverShare(0, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Shares[0].Payload, want.Payload) {
		t.Fatal("post-renewal recovery wrong")
	}
}

// TestRecoverShareBlindingHidesHelpers: the transcript the recovering
// node sees (the blinded values) must not equal the helpers' true shares.
// With overwhelming probability every blinded value differs.
func TestRecoverShareBlindingHidesHelpers(t *testing.T) {
	secret := make([]byte, 64)
	rand.Read(secret)
	c, _ := NewDataCommittee(secret, 5, 3, rand.Reader)
	helpers := [][]byte{
		append([]byte(nil), c.Shares[0].Payload...),
		append([]byte(nil), c.Shares[1].Payload...),
		append([]byte(nil), c.Shares[2].Payload...),
	}
	if err := c.RecoverShare(4, rand.Reader); err != nil {
		t.Fatal(err)
	}
	// The helpers' stored shares are untouched (protocol sends blinded
	// copies, never mutates state).
	for i, h := range helpers {
		if !bytes.Equal(h, c.Shares[i].Payload) {
			t.Fatalf("helper %d share mutated by recovery", i)
		}
	}
}

func TestRecoverShareValidation(t *testing.T) {
	c, _ := NewDataCommittee([]byte("x"), 4, 2, rand.Reader)
	if err := c.RecoverShare(9, rand.Reader); !errors.Is(err, ErrWrongCommittee) {
		t.Fatalf("bad index: %v", err)
	}
}

func TestRecoverShareStatsMetered(t *testing.T) {
	c, _ := NewDataCommittee(make([]byte, 100), 6, 3, rand.Reader)
	before := c.Stats.Messages
	if err := c.RecoverShare(5, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Messages != before+3 {
		t.Fatalf("recovery sent %d messages, want 3", c.Stats.Messages-before)
	}
}

func TestScalarRedistributeGrow(t *testing.T) {
	g := group.Test()
	secret := big.NewInt(192837465)
	c, err := NewScalarCommittee(g, secret, 5, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.Redistribute(9, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if c2.N != 9 || c2.T != 5 {
		t.Fatalf("new committee (%d,%d)", c2.T, c2.N)
	}
	// All new shares verify against the NEW commitment vector.
	for i := 0; i < c2.N; i++ {
		if err := c2.VerifyHolder(i); err != nil {
			t.Fatalf("new holder %d: %v", i, err)
		}
	}
	got, err := c2.Reconstruct(0, 2, 4, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("secret lost in scalar redistribution")
	}
}

func TestScalarRedistributeShrink(t *testing.T) {
	g := group.Test()
	secret := big.NewInt(555)
	c, _ := NewScalarCommittee(g, secret, 6, 4, rand.Reader)
	c2, err := c.Redistribute(3, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Reconstruct(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("secret lost in shrink")
	}
}

func TestScalarRedistributeInvalidatesOld(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(7), 4, 2, rand.Reader)
	if _, err := c.Redistribute(4, 2, rand.Reader); err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Shares {
		if s.S.Sign() != 0 || s.Blind.Sign() != 0 {
			t.Fatalf("old share %d not zeroised", i)
		}
	}
}

func TestScalarRedistributeThenRenew(t *testing.T) {
	g := group.Test()
	secret := big.NewInt(31415926)
	c, _ := NewScalarCommittee(g, secret, 4, 2, rand.Reader)
	c2, err := c.Redistribute(6, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c2.N; i++ {
		if err := c2.VerifyHolder(i); err != nil {
			t.Fatalf("holder %d after redistribute+renew: %v", i, err)
		}
	}
	got, err := c2.Reconstruct(3, 4, 5)
	if err != nil || got.Cmp(secret) != 0 {
		t.Fatalf("reconstruction after redistribute+renew: %v %v", got, err)
	}
}

func TestScalarRedistributeValidation(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(1), 4, 2, rand.Reader)
	if _, err := c.Redistribute(2, 3, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t>n: %v", err)
	}
}

// TestScalarRedistributeDetectsCheatingDealer: a dealer whose share was
// tampered with (so its sub-dealing no longer matches the committee's
// public commitments) is caught by the external consistency check.
func TestScalarRedistributeDetectsCheatingDealer(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(99), 4, 2, rand.Reader)
	c.Shares[0].S = new(big.Int).Add(c.Shares[0].S, big.NewInt(1))
	if _, err := c.Redistribute(4, 2, rand.Reader); err == nil {
		t.Fatal("tampered dealer share passed redistribution")
	}
}
