package pss

import (
	"fmt"
	"io"
	"math/big"

	"securearchive/internal/group"
	"securearchive/internal/vss"
)

// ScalarCommittee proactively protects a scalar secret in Z_q under full
// Pedersen-VSS verification. This is the construction used for keys and
// per-object secrets: every share is checkable against public commitments
// at all times, renewal dealings carry a proof of zero-sharing, and the
// published commitments are information-theoretically hiding, so even the
// verification material never weakens long-term confidentiality (§3.3).
type ScalarCommittee struct {
	G     *group.Group
	N, T  int
	Epoch int
	// Shares[i] belongs to holder i; Comms verifies all of them.
	Shares []vss.Share
	Comms  *vss.Commitments
	Stats  CommStats
}

// ZeroProof accompanies a renewal dealing: it opens the blinding exponent
// of the constant-term commitment, proving C_0 = h^{b_0}, i.e. the dealt
// constant term is zero, without revealing anything else about the
// polynomial.
type ZeroProof struct {
	B0 *big.Int
}

// ScalarDealing is one holder's verifiable renewal contribution.
type ScalarDealing struct {
	Dealer    int
	SubShares []vss.Share
	Comms     *vss.Commitments
	Zero      ZeroProof
}

// NewScalarCommittee shares the scalar secret (reduced mod q) across n
// holders with threshold t under Pedersen VSS.
func NewScalarCommittee(g *group.Group, secret *big.Int, n, t int, rnd io.Reader) (*ScalarCommittee, error) {
	shares, comms, err := vss.PedersenSplit(g, secret, n, t, rnd)
	if err != nil {
		return nil, err
	}
	return &ScalarCommittee{G: g, N: n, T: t, Shares: shares, Comms: comms}, nil
}

// VerifyHolder checks holder i's current share against the committee's
// public commitments.
func (c *ScalarCommittee) VerifyHolder(i int) error {
	if i < 0 || i >= c.N {
		return fmt.Errorf("%w: holder %d", ErrWrongCommittee, i)
	}
	return vss.Verify(c.Comms, c.Shares[i])
}

// Reconstruct recovers the secret from the holders with the given indices,
// verifying each contributed share first — a corrupt holder is identified,
// not merely detected.
func (c *ScalarCommittee) Reconstruct(holders ...int) (*big.Int, error) {
	if len(holders) < c.T {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewHolders, len(holders), c.T)
	}
	sel := make([]vss.Share, 0, len(holders))
	for _, h := range holders {
		if h < 0 || h >= c.N {
			return nil, fmt.Errorf("%w: holder %d", ErrWrongCommittee, h)
		}
		if err := vss.Verify(c.Comms, c.Shares[h]); err != nil {
			return nil, fmt.Errorf("holder %d: %w", h, err)
		}
		sel = append(sel, c.Shares[h])
	}
	return vss.Combine(c.G, sel, c.T)
}

// deal produces holder d's verifiable zero-dealing.
func (c *ScalarCommittee) deal(d int, rnd io.Reader) (ScalarDealing, error) {
	// A Pedersen sharing of 0: coefficients a_0 = 0, blinding b_0 random.
	// PedersenSplit reduces the secret mod q, so passing 0 gives a_0 = 0;
	// the zero proof opens b_0, which we must extract. vss does not expose
	// coefficients, so we deal manually: share zero, then recompute b_0
	// from the constant commitment... which requires knowing b_0. Instead
	// we construct the dealing through PedersenSplitZero below.
	return pedersenZeroDealing(c.G, d, c.N, c.T, rnd)
}

// pedersenZeroDealing builds a Pedersen VSS dealing of the secret 0 along
// with its zero proof. It mirrors vss.PedersenSplit but keeps b_0.
func pedersenZeroDealing(g *group.Group, dealer, n, t int, rnd io.Reader) (ScalarDealing, error) {
	zero := big.NewInt(0)
	// Sample the blinding constant explicitly so it can be opened.
	b0, err := g.RandScalar(rnd)
	if err != nil {
		return ScalarDealing{}, err
	}
	shares, comms, err := vss.PedersenSplitWithBlind(g, zero, b0, n, t, rnd)
	if err != nil {
		return ScalarDealing{}, err
	}
	return ScalarDealing{Dealer: dealer, SubShares: shares, Comms: comms, Zero: ZeroProof{B0: b0}}, nil
}

// VerifyScalarDealing checks a renewal dealing: the zero proof
// (C_0 == h^{b_0}) and the VSS consistency of the subshare addressed to
// holder j.
func VerifyScalarDealing(g *group.Group, dl ScalarDealing, j int) error {
	if dl.Zero.B0 == nil || dl.Comms == nil || len(dl.Comms.C) == 0 {
		return fmt.Errorf("%w: malformed dealing", ErrNotZeroSharing)
	}
	if g.ExpH(dl.Zero.B0).Cmp(dl.Comms.C[0]) != 0 {
		return fmt.Errorf("%w: C_0 != h^b0", ErrNotZeroSharing)
	}
	if j < 0 || j >= len(dl.SubShares) {
		return fmt.Errorf("%w: holder %d", ErrWrongCommittee, j)
	}
	return vss.Verify(dl.Comms, dl.SubShares[j])
}

// Redistribute runs the verifiable redistribution protocol (Wong, Wang &
// Wing) on the scalar committee: the first tOld holders each sub-share
// their (share, blind) pair under Pedersen VSS with the new parameters
// (nNew, tNew); every sub-dealing is verified both internally (VSS
// consistency) and externally (the dealer's constant commitment must
// equal its share's commitment implied by the OLD committee's public
// vector — a dealer cannot substitute a different value). New shares and
// the new public commitment vector follow by Lagrange combination in the
// exponent. The old committee's shares are invalidated.
func (c *ScalarCommittee) Redistribute(nNew, tNew int, rnd io.Reader) (*ScalarCommittee, error) {
	if tNew < 1 || tNew > nNew {
		return nil, fmt.Errorf("%w: nNew=%d tNew=%d", ErrInvalidParams, nNew, tNew)
	}
	g := c.G
	dealers := c.Shares[:c.T]

	type dealing struct {
		shares []vss.Share
		comms  *vss.Commitments
	}
	deals := make([]dealing, c.T)
	scalarBytes := (g.Q.BitLen() + 7) / 8
	for i, ds := range dealers {
		// Dealer i sub-shares S_i with blinding constant Blind_i, so the
		// sub-dealing's C_0 equals g^{S_i} h^{Blind_i} — checkable against
		// the old committee's commitment vector at x = ds.X.
		shares, comms, err := vss.PedersenSplitWithBlind(g, ds.S, ds.Blind, nNew, tNew, rnd)
		if err != nil {
			return nil, err
		}
		implied := big.NewInt(1)
		xj := big.NewInt(1)
		x := big.NewInt(ds.X)
		for _, ck := range c.Comms.C {
			implied = g.Mul(implied, g.Exp(ck, xj))
			xj = new(big.Int).Mod(new(big.Int).Mul(xj, x), g.Q)
		}
		if comms.C[0].Cmp(implied) != 0 {
			return nil, fmt.Errorf("pss: dealer %d sub-shared a value inconsistent with the committee commitments", i)
		}
		for j := range shares {
			if err := vss.Verify(comms, shares[j]); err != nil {
				return nil, fmt.Errorf("pss: dealer %d subshare %d: %w", i, j, err)
			}
		}
		deals[i] = dealing{shares: shares, comms: comms}
		c.Stats.Messages += nNew
		c.Stats.Bytes += int64(nNew * 2 * scalarBytes)
		c.Stats.Broadcast += int64(((g.P.BitLen() + 7) / 8) * tNew)
	}

	// Lagrange coefficients of the dealers' points at zero, mod q.
	lambda := make([]*big.Int, c.T)
	for i := range dealers {
		lambda[i] = scalarLagrangeAtZero(dealers, i, g.Q)
	}

	// New shares: S'_j = Σ_i λ_i · sub_i(j); blinds likewise.
	newShares := make([]vss.Share, nNew)
	for j := 0; j < nNew; j++ {
		s := new(big.Int)
		b := new(big.Int)
		for i := range deals {
			s.Add(s, new(big.Int).Mul(lambda[i], deals[i].shares[j].S))
			b.Add(b, new(big.Int).Mul(lambda[i], deals[i].shares[j].Blind))
		}
		s.Mod(s, g.Q)
		b.Mod(b, g.Q)
		newShares[j] = vss.Share{X: int64(j + 1), S: s, Blind: b}
	}
	// New commitments: C'_k = Π_i (C^i_k)^{λ_i}.
	newC := make([]*big.Int, tNew)
	for k := 0; k < tNew; k++ {
		acc := big.NewInt(1)
		for i := range deals {
			acc = g.Mul(acc, g.Exp(deals[i].comms.C[k], lambda[i]))
		}
		newC[k] = acc
	}

	// Invalidate old shares.
	for i := range c.Shares {
		c.Shares[i].S = new(big.Int)
		c.Shares[i].Blind = new(big.Int)
	}

	out := &ScalarCommittee{
		G: g, N: nNew, T: tNew, Epoch: c.Epoch + 1,
		Shares: newShares,
		Comms:  &vss.Commitments{G: g, Pedersen: true, C: newC},
		Stats:  c.Stats,
	}
	out.Stats.Rounds++
	return out, nil
}

// scalarLagrangeAtZero computes λ_i(0) for the dealer set, mod q.
func scalarLagrangeAtZero(dealers []vss.Share, i int, q *big.Int) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	xi := big.NewInt(dealers[i].X)
	for j := range dealers {
		if j == i {
			continue
		}
		xj := big.NewInt(dealers[j].X)
		num.Mul(num, xj)
		num.Mod(num, q)
		d := new(big.Int).Sub(xj, xi)
		d.Mod(d, q)
		den.Mul(den, d)
		den.Mod(den, q)
	}
	den.ModInverse(den, q)
	out := new(big.Int).Mul(num, den)
	return out.Mod(out, q)
}

// Renew executes one verified renewal round. Every holder deals a
// verifiable zero-sharing; every holder verifies every dealing it is
// affected by; shares and the public commitment vector are updated
// homomorphically. Stolen pre-renewal shares become worthless.
func (c *ScalarCommittee) Renew(rnd io.Reader) error {
	dealings := make([]ScalarDealing, c.N)
	scalarBytes := (c.G.Q.BitLen() + 7) / 8
	commBytes := ((c.G.P.BitLen()+7)/8)*c.T + scalarBytes // C vector + zero proof
	for d := 0; d < c.N; d++ {
		dl, err := c.deal(d, rnd)
		if err != nil {
			return err
		}
		dealings[d] = dl
		c.Stats.Messages += c.N - 1
		c.Stats.Bytes += int64((c.N - 1) * 2 * scalarBytes) // share + blind
		c.Stats.Broadcast += int64(commBytes)
	}
	for j := 0; j < c.N; j++ {
		for d := 0; d < c.N; d++ {
			if err := VerifyScalarDealing(c.G, dealings[d], j); err != nil {
				return fmt.Errorf("dealer %d rejected by holder %d: %w", d, j, err)
			}
		}
	}
	// Update shares: s_j += Σ_d δ_d(j); blinds likewise. Update public
	// commitments: C_k *= Π_d C^d_k (Pedersen homomorphism).
	for j := 0; j < c.N; j++ {
		s := new(big.Int).Set(c.Shares[j].S)
		b := new(big.Int).Set(c.Shares[j].Blind)
		for d := 0; d < c.N; d++ {
			s.Add(s, dealings[d].SubShares[j].S)
			b.Add(b, dealings[d].SubShares[j].Blind)
		}
		s.Mod(s, c.G.Q)
		b.Mod(b, c.G.Q)
		c.Shares[j] = vss.Share{X: c.Shares[j].X, S: s, Blind: b}
	}
	newC := make([]*big.Int, c.T)
	for k := 0; k < c.T; k++ {
		acc := new(big.Int).Set(c.Comms.C[k])
		for d := 0; d < c.N; d++ {
			acc = c.G.Mul(acc, dealings[d].Comms.C[k])
		}
		newC[k] = acc
	}
	c.Comms = &vss.Commitments{G: c.G, Pedersen: true, C: newC}
	c.Epoch++
	c.Stats.Rounds++
	return nil
}
