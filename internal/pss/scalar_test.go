package pss

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"securearchive/internal/group"
	"securearchive/internal/vss"
)

func TestScalarCommitteeRoundTrip(t *testing.T) {
	g := group.Test()
	secret := big.NewInt(918273645)
	c, err := NewScalarCommittee(g, secret, 5, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N; i++ {
		if err := c.VerifyHolder(i); err != nil {
			t.Fatalf("holder %d: %v", i, err)
		}
	}
	got, err := c.Reconstruct(0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("scalar reconstruction mismatch")
	}
}

func TestScalarRenewPreservesSecretAndVerifiability(t *testing.T) {
	g := group.Test()
	secret := big.NewInt(777)
	c, err := NewScalarCommittee(g, secret, 4, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := c.Renew(rand.Reader); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// All shares must still verify against the UPDATED commitments.
		for i := 0; i < c.N; i++ {
			if err := c.VerifyHolder(i); err != nil {
				t.Fatalf("round %d holder %d: %v", round, i, err)
			}
		}
		got, err := c.Reconstruct(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("round %d: secret changed", round)
		}
	}
}

func TestScalarRenewChangesSharesAndCommitments(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(5), 3, 2, rand.Reader)
	s0 := new(big.Int).Set(c.Shares[0].S)
	c0 := new(big.Int).Set(c.Comms.C[0])
	if err := c.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if c.Shares[0].S.Cmp(s0) == 0 {
		t.Fatal("share unchanged after renewal")
	}
	if c.Comms.C[0].Cmp(c0) == 0 {
		t.Fatal("commitment unchanged after renewal")
	}
}

func TestScalarStaleShareFailsVerification(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(31337), 4, 2, rand.Reader)
	stolen := c.Shares[0] // adversary's pre-renewal copy
	if err := c.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	// The stale share no longer verifies against the updated commitments:
	// the system can detect and reject a replayed old share.
	if err := vss.Verify(c.Comms, stolen); !errors.Is(err, vss.ErrVerifyFailed) {
		t.Fatalf("stale share still verifies: %v", err)
	}
}

func TestVerifyScalarDealingRejectsNonZero(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(1), 4, 2, rand.Reader)
	dl, err := c.deal(0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyScalarDealing(g, dl, 1); err != nil {
		t.Fatalf("honest dealing rejected: %v", err)
	}
	// A cheating dealer shares a NON-zero secret but keeps the b0 proof.
	shares, comms, err := vss.PedersenSplitWithBlind(g, big.NewInt(999), dl.Zero.B0, 4, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cheat := ScalarDealing{Dealer: 0, SubShares: shares, Comms: comms, Zero: dl.Zero}
	if err := VerifyScalarDealing(g, cheat, 1); !errors.Is(err, ErrNotZeroSharing) {
		t.Fatalf("non-zero dealing accepted: %v", err)
	}
	// A dealer with corrupted subshare fails VSS verification.
	dl2, _ := c.deal(1, rand.Reader)
	dl2.SubShares[2].S = new(big.Int).Add(dl2.SubShares[2].S, big.NewInt(1))
	if err := VerifyScalarDealing(g, dl2, 2); !errors.Is(err, vss.ErrVerifyFailed) {
		t.Fatalf("corrupt subshare accepted: %v", err)
	}
}

func TestScalarReconstructIdentifiesCorruptHolder(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(12345), 4, 2, rand.Reader)
	c.Shares[1].S = new(big.Int).Add(c.Shares[1].S, big.NewInt(1))
	if _, err := c.Reconstruct(0, 1); !errors.Is(err, vss.ErrVerifyFailed) {
		t.Fatalf("corrupt holder not identified: %v", err)
	}
	// Other holders still work.
	got, err := c.Reconstruct(0, 2)
	if err != nil || got.Int64() != 12345 {
		t.Fatalf("honest holders failed: %v %v", got, err)
	}
}

func TestScalarCommitteeStats(t *testing.T) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(7), 5, 3, rand.Reader)
	if err := c.Renew(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Messages != 5*4 {
		t.Fatalf("messages = %d, want 20", c.Stats.Messages)
	}
	if c.Stats.Bytes == 0 || c.Stats.Broadcast == 0 || c.Stats.Rounds != 1 {
		t.Fatalf("stats not accumulated: %+v", c.Stats)
	}
}

func BenchmarkScalarRenew5of3(b *testing.B) {
	g := group.Test()
	c, _ := NewScalarCommittee(g, big.NewInt(99), 5, 3, rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Renew(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
