// Package qkd simulates BB84 quantum key distribution — the
// information-theoretic channel LINCOS builds on (§3.2, experiment E10).
//
// The protocol: Alice encodes random bits in random bases (rectilinear or
// diagonal) on single photons; Bob measures each in a random basis. Where
// bases match, Bob's bit equals Alice's; where they differ, his outcome is
// uniform. They publicly compare bases ("sifting", keeping ~half), then
// sacrifice a random sample of sifted bits to estimate the quantum bit
// error rate (QBER). An intercept-resend eavesdropper must measure each
// photon in a guessed basis and resend, which corrupts ~25% of the sifted
// sample — far above the abort threshold, so harvesting the channel is
// *detectable before any secret is sent*. That detectability, which no
// classical channel offers, is the whole point; the paper's caveat is the
// specialised infrastructure it needs.
//
// The simulation reproduces the protocol's probability structure exactly
// (basis mismatch, disturbance, channel noise) with seeded randomness, and
// finishes with error reconciliation (revealing parities of a sample) and
// privacy amplification into OTP-grade key bytes.
package qkd

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// Errors returned by this package.
var (
	ErrBadParams = errors.New("qkd: invalid parameters")
	ErrAborted   = errors.New("qkd: QBER above threshold, channel presumed tapped")
	ErrTooShort  = errors.New("qkd: sifted key too short for estimation")
)

// Params configures a BB84 session.
type Params struct {
	// Photons is the number of qubits Alice sends.
	Photons int
	// NoiseRate is the physical channel's intrinsic error probability
	// per matched-basis bit (0.00–0.05 is realistic fibre).
	NoiseRate float64
	// SampleFraction is the share of sifted bits sacrificed for QBER
	// estimation (typically 0.25).
	SampleFraction float64
	// AbortQBER is the estimation threshold above which the parties
	// abort (typically 0.11 for BB84 with one-way post-processing).
	AbortQBER float64
	// Eavesdrop enables the intercept-resend attacker.
	Eavesdrop bool
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Photons < 16 {
		return fmt.Errorf("%w: photons=%d", ErrBadParams, p.Photons)
	}
	if p.NoiseRate < 0 || p.NoiseRate >= 0.5 {
		return fmt.Errorf("%w: noise=%v", ErrBadParams, p.NoiseRate)
	}
	if p.SampleFraction <= 0 || p.SampleFraction >= 1 {
		return fmt.Errorf("%w: sample=%v", ErrBadParams, p.SampleFraction)
	}
	if p.AbortQBER <= 0 || p.AbortQBER >= 0.5 {
		return fmt.Errorf("%w: abort=%v", ErrBadParams, p.AbortQBER)
	}
	return nil
}

// Result reports one BB84 session.
type Result struct {
	// Key is the final shared key after privacy amplification; nil if the
	// session aborted.
	Key []byte
	// SiftedBits is the number of matched-basis positions.
	SiftedBits int
	// EstimatedQBER is the error rate measured on the sacrificed sample.
	EstimatedQBER float64
	// Detected is true when the session aborted due to QBER.
	Detected bool
	// EveInfoBits estimates how many sifted-key bits the eavesdropper
	// learned (correct-basis interceptions of retained bits).
	EveInfoBits int
}

// Run executes one session with deterministic randomness from seed.
// Each call owns a locally seeded *rand.Rand — never the shared
// math/rand global source — so concurrent sessions cannot perturb each
// other's draw sequences and a given seed always replays the same run.
func Run(p Params, seed int64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	type photon struct {
		aliceBit   byte
		aliceBasis byte
		bobBasis   byte
		bobBit     byte
		eveKnows   bool
	}
	photons := make([]photon, p.Photons)
	for i := range photons {
		ph := &photons[i]
		ph.aliceBit = byte(rng.Intn(2))
		ph.aliceBasis = byte(rng.Intn(2))
		ph.bobBasis = byte(rng.Intn(2))

		bitOnWire := ph.aliceBit
		basisOnWire := ph.aliceBasis
		if p.Eavesdrop {
			eveBasis := byte(rng.Intn(2))
			var eveBit byte
			if eveBasis == ph.aliceBasis {
				eveBit = ph.aliceBit
				ph.eveKnows = true
			} else {
				eveBit = byte(rng.Intn(2)) // wrong basis: uniform outcome
			}
			// Eve resends in HER basis: the quantum state is now |eveBit⟩
			// in eveBasis — the disturbance that betrays her.
			bitOnWire = eveBit
			basisOnWire = eveBasis
		}

		if ph.bobBasis == basisOnWire {
			ph.bobBit = bitOnWire
		} else {
			ph.bobBit = byte(rng.Intn(2))
		}
		// Intrinsic channel noise flips matched-basis outcomes.
		if ph.bobBasis == ph.aliceBasis && rng.Float64() < p.NoiseRate {
			ph.bobBit ^= 1
		}
	}

	// Sifting: public basis comparison.
	var aliceSift, bobSift []byte
	var eveSift []bool
	for i := range photons {
		ph := &photons[i]
		if ph.aliceBasis == ph.bobBasis {
			aliceSift = append(aliceSift, ph.aliceBit)
			bobSift = append(bobSift, ph.bobBit)
			eveSift = append(eveSift, ph.eveKnows)
		}
	}
	sifted := len(aliceSift)
	sampleN := int(float64(sifted) * p.SampleFraction)
	if sampleN < 8 || sifted-sampleN < 8 {
		return nil, fmt.Errorf("%w: sifted=%d", ErrTooShort, sifted)
	}

	// QBER estimation on a random sacrificed sample.
	perm := rng.Perm(sifted)
	sampleIdx := perm[:sampleN]
	keepIdx := perm[sampleN:]
	errs := 0
	for _, i := range sampleIdx {
		if aliceSift[i] != bobSift[i] {
			errs++
		}
	}
	qber := float64(errs) / float64(sampleN)
	res := &Result{SiftedBits: sifted, EstimatedQBER: qber}
	if qber > p.AbortQBER {
		res.Detected = true
		return res, ErrAborted
	}

	// Error reconciliation (simulation shortcut): Bob adopts Alice's
	// retained bits — standard cascade/LDPC reconciliation converges to
	// this; the information leaked to Eve during reconciliation is
	// accounted for by the sacrificial margin in privacy amplification.
	keyBits := make([]byte, 0, len(keepIdx))
	eveInfo := 0
	for _, i := range keepIdx {
		keyBits = append(keyBits, aliceSift[i])
		if eveSift[i] {
			eveInfo++
		}
	}
	res.EveInfoBits = eveInfo

	// Privacy amplification: compress to half the retained bits via
	// SHA-256 in counter mode.
	outBytes := len(keyBits) / 16 // 1 output byte per 16 key bits
	if outBytes == 0 {
		outBytes = 1
	}
	packed := packBits(keyBits)
	key := make([]byte, outBytes)
	var ctr [8]byte
	for off := 0; off < outBytes; off += sha256.Size {
		binary.BigEndian.PutUint64(ctr[:], uint64(off/sha256.Size))
		h := sha256.New()
		h.Write([]byte("securearchive/qkd/pa v1"))
		h.Write(ctr[:])
		h.Write(packed)
		copy(key[off:], h.Sum(nil))
	}
	res.Key = key
	return res, nil
}

func packBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// TheoreticalInterceptQBER is the QBER an intercept-resend attack induces
// on an otherwise noiseless channel: Eve guesses the wrong basis half the
// time, and each wrong guess flips Bob's matched-basis bit with
// probability 1/2 → 25%.
const TheoreticalInterceptQBER = 0.25

// DetectionProbability estimates, by simulation over trials, how often an
// intercept-resend attacker is caught with the given parameters.
func DetectionProbability(p Params, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, ErrBadParams
	}
	p.Eavesdrop = true
	caught := 0
	for i := 0; i < trials; i++ {
		res, err := Run(p, seed+int64(i))
		if err != nil && !errors.Is(err, ErrAborted) {
			return 0, err
		}
		if res != nil && res.Detected {
			caught++
		}
	}
	return float64(caught) / float64(trials), nil
}
