package qkd

import (
	"errors"
	"math"
	"testing"
)

func baseParams() Params {
	return Params{
		Photons:        8192,
		NoiseRate:      0.01,
		SampleFraction: 0.25,
		AbortQBER:      0.11,
	}
}

func TestCleanChannelProducesKey(t *testing.T) {
	res, err := Run(baseParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Fatal("clean channel flagged as tapped")
	}
	if len(res.Key) == 0 {
		t.Fatal("no key produced")
	}
	// Sifting keeps about half the photons.
	if res.SiftedBits < 3500 || res.SiftedBits > 4700 {
		t.Fatalf("sifted %d of 8192, want ≈4096", res.SiftedBits)
	}
	// QBER should be near the channel noise rate.
	if res.EstimatedQBER > 0.04 {
		t.Fatalf("clean QBER %.3f, want ≈0.01", res.EstimatedQBER)
	}
}

func TestEavesdropperRaisesQBERToQuarter(t *testing.T) {
	p := baseParams()
	p.NoiseRate = 0
	p.Eavesdrop = true
	res, err := Run(p, 2)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("intercept-resend not detected: err=%v", err)
	}
	if !res.Detected {
		t.Fatal("Detected flag not set")
	}
	if math.Abs(res.EstimatedQBER-TheoreticalInterceptQBER) > 0.05 {
		t.Fatalf("intercept QBER %.3f, want ≈0.25", res.EstimatedQBER)
	}
	if res.Key != nil {
		t.Fatal("aborted session leaked a key")
	}
}

func TestDetectionProbabilityNearCertain(t *testing.T) {
	p := baseParams()
	prob, err := DetectionProbability(p, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prob < 0.99 {
		t.Fatalf("detection probability %.2f, want ≈1 at 8192 photons", prob)
	}
}

func TestNoFalsePositivesOnCleanChannel(t *testing.T) {
	p := baseParams()
	for i := 0; i < 20; i++ {
		res, err := Run(p, int64(100+i))
		if err != nil {
			t.Fatalf("trial %d: clean channel aborted: %v (QBER %.3f)", i, err, res.EstimatedQBER)
		}
	}
}

func TestKeysAgreeDeterministically(t *testing.T) {
	a, err := Run(baseParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Key) != string(b.Key) {
		t.Fatal("same seed produced different keys")
	}
}

func TestHighNoiseChannelAborts(t *testing.T) {
	p := baseParams()
	p.NoiseRate = 0.2 // noisier than the abort threshold
	if _, err := Run(p, 3); !errors.Is(err, ErrAborted) {
		t.Fatalf("20%% noise channel not aborted: %v", err)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{Photons: 4, NoiseRate: 0, SampleFraction: 0.25, AbortQBER: 0.11},
		{Photons: 1024, NoiseRate: 0.6, SampleFraction: 0.25, AbortQBER: 0.11},
		{Photons: 1024, NoiseRate: 0, SampleFraction: 0, AbortQBER: 0.11},
		{Photons: 1024, NoiseRate: 0, SampleFraction: 1.0, AbortQBER: 0.11},
		{Photons: 1024, NoiseRate: 0, SampleFraction: 0.25, AbortQBER: 0},
	}
	for i, p := range bad {
		if _, err := Run(p, 1); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	if _, err := DetectionProbability(baseParams(), 0, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero trials: %v", err)
	}
}

// TestEveInfoAccounting: with eavesdropping and a LOW abort threshold
// disabled (high AbortQBER so the run completes), Eve knows about half the
// retained bits — which is why a completed-but-tapped session is unusable
// and detection matters.
func TestEveInfoAccounting(t *testing.T) {
	p := baseParams()
	p.NoiseRate = 0
	p.Eavesdrop = true
	p.AbortQBER = 0.49 // artificially tolerate the tap
	res, err := Run(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	retained := res.SiftedBits - int(float64(res.SiftedBits)*p.SampleFraction)
	frac := float64(res.EveInfoBits) / float64(retained)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("Eve knows %.2f of retained bits, want ≈0.5", frac)
	}
}

func TestKeyRateScalesWithPhotons(t *testing.T) {
	small, err := Run(Params{Photons: 2048, NoiseRate: 0.01, SampleFraction: 0.25, AbortQBER: 0.11}, 9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Params{Photons: 16384, NoiseRate: 0.01, SampleFraction: 0.25, AbortQBER: 0.11}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Key) <= len(small.Key) {
		t.Fatalf("key did not grow with photons: %d vs %d", len(small.Key), len(big.Key))
	}
}

func BenchmarkRun8192Photons(b *testing.B) {
	p := baseParams()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
