// Package reencrypt implements delegated re-encryption for archived
// stream-cipher envelopes — the §3.2 technique ("this re-encryption could
// be delegated to the storage system, without giving the system access to
// user keys, using ... Universal Proxy Re-Encryption") instantiated for
// the cascade's stream-cipher layers.
//
// For a CTR-style layer, ciphertext = plaintext ⊕ KS(k_old, n_old). The
// data owner — who alone holds keys — derives a re-encryption pad
//
//	R = KS(k_old, n_old) ⊕ KS(k_new, n_new)
//
// and hands ONLY R to the storage system. The system applies it in place:
// ct ⊕ R = plaintext ⊕ KS(k_new, n_new). The system never sees plaintext
// or either key; R is one-time material bound to this ciphertext (reusing
// it across objects would leak keystream differences, which Token
// enforces by construction: one token per envelope).
//
// What delegation does NOT buy — the paper's point — is I/O: the system
// still reads and rewrites every byte. Stats meters exactly that, and the
// costmodel package prices it at archive scale. And no re-encryption of
// any kind helps against ciphertext harvested before the rotation; that
// remains E4's lesson.
package reencrypt

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/cascade"
)

// Errors returned by this package.
var (
	ErrLayerMismatch = errors.New("reencrypt: token does not match envelope layer")
	ErrNoLayers      = errors.New("reencrypt: envelope has no layers")
	ErrSizeMismatch  = errors.New("reencrypt: token sized for a different ciphertext")
)

// Token is the re-encryption pad for one envelope's outermost layer,
// produced by the key holder and applied by the (untrusted) store.
type Token struct {
	// Pad is R = KS_old ⊕ KS_new, exactly ciphertext-sized.
	Pad []byte
	// NewScheme and NewNonce describe the layer after application.
	NewScheme cascade.Scheme
	NewNonce  []byte
	// OldScheme guards against applying the token to the wrong envelope.
	OldScheme cascade.Scheme
}

// Stats meters the store-side work delegation cannot avoid.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Tokens       int
}

// NewToken is run BY THE OWNER: given the envelope's outermost layer key
// and a fresh key for the replacement scheme, derive the pad. bodyLen
// must equal the envelope body length.
func NewToken(oldKey cascade.LayerKey, oldNonce []byte, newScheme cascade.Scheme, bodyLen int, rnd io.Reader) (*Token, cascade.LayerKey, error) {
	oldC, err := cascade.Get(oldKey.Scheme)
	if err != nil {
		return nil, cascade.LayerKey{}, err
	}
	newKeys, err := cascade.GenerateKeys([]cascade.Scheme{newScheme}, rnd)
	if err != nil {
		return nil, cascade.LayerKey{}, err
	}
	newC, err := cascade.Get(newScheme)
	if err != nil {
		return nil, cascade.LayerKey{}, err
	}
	newNonce := make([]byte, newC.NonceSize())
	if _, err := io.ReadFull(rnd, newNonce); err != nil {
		return nil, cascade.LayerKey{}, fmt.Errorf("reencrypt: reading randomness: %w", err)
	}
	// Pad = KS_old ⊕ KS_new, computed by XORing each keystream into a
	// zero buffer.
	pad := make([]byte, bodyLen)
	if err := oldC.XOR(pad, pad, oldKey.Key, oldNonce); err != nil {
		return nil, cascade.LayerKey{}, err
	}
	if err := newC.XOR(pad, pad, newKeys[0].Key, newNonce); err != nil {
		return nil, cascade.LayerKey{}, err
	}
	return &Token{
		Pad:       pad,
		NewScheme: newScheme,
		NewNonce:  newNonce,
		OldScheme: oldKey.Scheme,
	}, newKeys[0], nil
}

// Apply is run BY THE STORE: swap the envelope's outermost layer using
// only the token. The envelope is modified in place; the store reads and
// writes every byte (metered), but learns nothing.
func Apply(env *cascade.Envelope, tok *Token, st *Stats) error {
	if len(env.Layers) == 0 {
		return ErrNoLayers
	}
	top := &env.Layers[len(env.Layers)-1]
	if top.Scheme != tok.OldScheme {
		return fmt.Errorf("%w: envelope top is %s, token expects %s", ErrLayerMismatch, top.Scheme, tok.OldScheme)
	}
	if len(tok.Pad) != len(env.Body) {
		return fmt.Errorf("%w: pad %d, body %d", ErrSizeMismatch, len(tok.Pad), len(env.Body))
	}
	for i := range env.Body {
		env.Body[i] ^= tok.Pad[i]
	}
	top.Scheme = tok.NewScheme
	top.Nonce = tok.NewNonce
	if st != nil {
		st.BytesRead += int64(len(env.Body))
		st.BytesWritten += int64(len(env.Body))
		st.Tokens++
	}
	return nil
}

// RotateOutermost is the owner+store round trip in one call: derive a
// token for the envelope's outermost layer (whose key is keys[len-1]),
// apply it, and return the updated key stack.
func RotateOutermost(env *cascade.Envelope, keys []cascade.LayerKey, newScheme cascade.Scheme, st *Stats, rnd io.Reader) ([]cascade.LayerKey, error) {
	if len(env.Layers) == 0 || len(keys) != len(env.Layers) {
		return nil, ErrNoLayers
	}
	top := env.Layers[len(env.Layers)-1]
	tok, newKey, err := NewToken(keys[len(keys)-1], top.Nonce, newScheme, len(env.Body), rnd)
	if err != nil {
		return nil, err
	}
	if err := Apply(env, tok, st); err != nil {
		return nil, err
	}
	out := append([]cascade.LayerKey(nil), keys[:len(keys)-1]...)
	return append(out, newKey), nil
}
