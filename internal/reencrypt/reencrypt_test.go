package reencrypt

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/cascade"
)

func encryptOne(t *testing.T, msg []byte, schemes ...cascade.Scheme) (*cascade.Envelope, []cascade.LayerKey) {
	t.Helper()
	keys, err := cascade.GenerateKeys(schemes, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	env, err := cascade.Encrypt(msg, keys, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return env, keys
}

func TestRotateOutermostRoundTrip(t *testing.T) {
	msg := []byte("rotate my outer layer without reading me")
	env, keys := encryptOne(t, msg, cascade.AES256CTR)
	var st Stats
	newKeys, err := RotateOutermost(env, keys, cascade.ChaCha20, &st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if env.Layers[0].Scheme != cascade.ChaCha20 {
		t.Fatalf("layer scheme is %s after rotation", env.Layers[0].Scheme)
	}
	got, err := cascade.Decrypt(env, newKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("rotation corrupted the plaintext")
	}
	// The OLD key must no longer decrypt.
	if got, err := cascade.Decrypt(env, keys); err == nil && bytes.Equal(got, msg) {
		t.Fatal("old key still decrypts after rotation")
	}
}

func TestRotationOnCascadeTopLayer(t *testing.T) {
	msg := []byte("multi-layer envelope")
	env, keys := encryptOne(t, msg, cascade.AES256CTR, cascade.SHA256CTR)
	newKeys, err := RotateOutermost(env, keys, cascade.ChaCha20, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Layers) != 2 || env.Layers[1].Scheme != cascade.ChaCha20 {
		t.Fatalf("layers after rotation: %+v", env.Layers)
	}
	got, err := cascade.Decrypt(env, newKeys)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after top rotation: %v", err)
	}
}

// TestStoreSeesNoPlaintext: the token and the envelope body, together,
// must not reveal the plaintext. We check the store's view (body before,
// body after, pad) never equals the plaintext anywhere.
func TestStoreSeesNoPlaintext(t *testing.T) {
	msg := bytes.Repeat([]byte("SECRET42"), 16)
	env, keys := encryptOne(t, msg, cascade.AES256CTR)
	before := append([]byte(nil), env.Body...)
	top := env.Layers[0]
	tok, _, err := NewToken(keys[0], top.Nonce, cascade.ChaCha20, len(env.Body), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(env, tok, nil); err != nil {
		t.Fatal(err)
	}
	for name, view := range map[string][]byte{
		"body-before": before, "body-after": env.Body, "pad": tok.Pad,
	} {
		if bytes.Contains(view, []byte("SECRET42")) {
			t.Fatalf("store view %q contains plaintext", name)
		}
	}
}

func TestApplyValidation(t *testing.T) {
	msg := []byte("validate")
	env, keys := encryptOne(t, msg, cascade.AES256CTR)
	tok, _, err := NewToken(keys[0], env.Layers[0].Nonce, cascade.ChaCha20, len(env.Body), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong old scheme.
	bad := *tok
	bad.OldScheme = cascade.SHA256CTR
	if err := Apply(env, &bad, nil); !errors.Is(err, ErrLayerMismatch) {
		t.Fatalf("scheme mismatch: %v", err)
	}
	// Wrong size.
	short := *tok
	short.Pad = tok.Pad[:len(tok.Pad)-1]
	if err := Apply(env, &short, nil); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("size mismatch: %v", err)
	}
	// Empty envelope.
	if err := Apply(&cascade.Envelope{}, tok, nil); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("empty envelope: %v", err)
	}
}

func TestStatsMeterTheIO(t *testing.T) {
	msg := make([]byte, 10000)
	env, keys := encryptOne(t, msg, cascade.AES256CTR)
	var st Stats
	if _, err := RotateOutermost(env, keys, cascade.SHA256CTR, &st, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if st.BytesRead != 10000 || st.BytesWritten != 10000 || st.Tokens != 1 {
		t.Fatalf("stats = %+v; delegation must still pay full I/O", st)
	}
}

// TestRepeatedRotations: a year of quarterly rotations composes.
func TestRepeatedRotations(t *testing.T) {
	msg := []byte("rotate me every quarter")
	env, keys := encryptOne(t, msg, cascade.AES256CTR)
	schemes := []cascade.Scheme{cascade.ChaCha20, cascade.SHA256CTR, cascade.AES256CTR, cascade.ChaCha20}
	var err error
	for _, s := range schemes {
		keys, err = RotateOutermost(env, keys, s, nil, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := cascade.Decrypt(env, keys)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("after 4 rotations: %v", err)
	}
}

func TestNewTokenValidation(t *testing.T) {
	good := cascade.LayerKey{Scheme: cascade.AES256CTR, Key: make([]byte, 32)}
	nonce := make([]byte, 16)
	if _, _, err := NewToken(cascade.LayerKey{Scheme: "rot13", Key: nil}, nonce, cascade.ChaCha20, 10, rand.Reader); err == nil {
		t.Fatal("unknown old scheme accepted")
	}
	if _, _, err := NewToken(good, nonce, "rot13", 10, rand.Reader); err == nil {
		t.Fatal("unknown new scheme accepted")
	}
	// Wrong nonce size for the old cipher surfaces from the XOR.
	if _, _, err := NewToken(good, []byte{1}, cascade.ChaCha20, 10, rand.Reader); err == nil {
		t.Fatal("bad nonce accepted")
	}
}

func TestRotateValidation(t *testing.T) {
	if _, err := RotateOutermost(&cascade.Envelope{}, nil, cascade.ChaCha20, nil, rand.Reader); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("empty envelope: %v", err)
	}
	msg := []byte("m")
	env, keys := encryptOne(t, msg, cascade.AES256CTR)
	if _, err := RotateOutermost(env, keys[:0], cascade.ChaCha20, nil, rand.Reader); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("key/layer mismatch: %v", err)
	}
}

func BenchmarkRotate1MiB(b *testing.B) {
	msg := make([]byte, 1<<20)
	keys, _ := cascade.GenerateKeys([]cascade.Scheme{cascade.AES256CTR}, rand.Reader)
	env, _ := cascade.Encrypt(msg, keys, rand.Reader)
	k := keys
	b.SetBytes(1 << 20)
	b.ResetTimer()
	var err error
	for i := 0; i < b.N; i++ {
		k, err = RotateOutermost(env, k, cascade.ChaCha20, nil, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
	}
}
