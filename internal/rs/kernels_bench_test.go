package rs

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// BenchmarkRSEncodeParallel measures end-to-end parity computation MB/s
// (payload bytes via b.SetBytes) for a 10+4 code across payload sizes,
// comparing three paths:
//
//	scalar — the seed branchy gf256.MulSlice implementation (oracle)
//	p1     — table-driven kernels, serial (WithParallelism(1))
//	pN     — table-driven kernels, N = GOMAXPROCS workers
//
// Run with -cpu 1,4 to additionally scale the scheduler; the p1/pN pair
// isolates the pipeline's own worker scaling at a fixed GOMAXPROCS.
func BenchmarkRSEncodeParallel(b *testing.B) {
	const k, m = 10, 4
	maxprocs := runtime.GOMAXPROCS(0)
	for _, payload := range []int{1 << 10, 64 << 10, 1 << 20, 16 << 20} {
		scalar, err := New(k, m, WithParallelism(1))
		if err != nil {
			b.Fatal(err)
		}
		parN, err := New(k, m) // default: GOMAXPROCS workers
		if err != nil {
			b.Fatal(err)
		}
		shards := make([][]byte, k+m)
		size := (payload + k - 1) / k
		rng := rand.New(rand.NewSource(int64(payload)))
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < k {
				rng.Read(shards[i])
			}
		}
		label := sizeLabel(payload)
		b.Run("scalar/"+label, func(b *testing.B) {
			b.SetBytes(int64(payload))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := scalar.encodeShardsScalar(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("p1/"+label, func(b *testing.B) {
			b.SetBytes(int64(payload))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := scalar.EncodeShards(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("p%d/%s", maxprocs, label), func(b *testing.B) {
			b.SetBytes(int64(payload))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := parN.EncodeShards(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRSEncodeInto measures the pooled split+parity path used by
// the vault's batched/chunked writers; allocs/op should read 0 for
// sub-grain payloads once the pools are warm.
func BenchmarkRSEncodeInto(b *testing.B) {
	const k, m = 10, 4
	c, err := Cached(k, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, payload := range []int{4 << 10, 48 << 10, 1 << 20} {
		data := make([]byte, payload)
		rand.New(rand.NewSource(int64(payload))).Read(data)
		b.Run(sizeLabel(payload), func(b *testing.B) {
			b.SetBytes(int64(payload))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := c.AcquireShards(payload)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.EncodeInto(data, s); err != nil {
					b.Fatal(err)
				}
				s.Release()
			}
		})
	}
}

func sizeLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}
