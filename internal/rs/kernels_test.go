package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeShardsMatchesScalarOracle differentially tests the
// table-driven, parallel EncodeShards against the seed scalar
// implementation across code shapes, payload sizes (including unaligned
// tails) and parallelism degrees.
func TestEncodeShardsMatchesScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ k, m int }{{1, 0}, {1, 3}, {2, 1}, {4, 2}, {6, 3}, {10, 4}, {17, 5}}
	sizes := []int{1, 7, 16, 100, 1023, 4096, 70000}
	for _, sh := range shapes {
		for _, size := range sizes {
			for _, par := range []int{1, 0, 3} {
				code, err := New(sh.k, sh.m, WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				shards := make([][]byte, code.TotalShards())
				want := make([][]byte, code.TotalShards())
				for i := range shards {
					shards[i] = make([]byte, size)
					want[i] = make([]byte, size)
					if i < sh.k {
						rng.Read(shards[i])
						copy(want[i], shards[i])
					}
				}
				if err := code.encodeShardsScalar(want); err != nil {
					t.Fatal(err)
				}
				if err := code.EncodeShards(shards); err != nil {
					t.Fatal(err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], want[i]) {
						t.Fatalf("k=%d m=%d size=%d par=%d: shard %d diverges from scalar oracle",
							sh.k, sh.m, size, par, i)
					}
				}
			}
		}
	}
}

// TestReconstructParallelMatchesSerial checks that reconstruction under
// parallelism recovers exactly what the serial path does, for every
// erasure pattern of a 4+3 code.
func TestReconstructParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const k, m = 4, 3
	data := make([]byte, 300000)
	rng.Read(data)

	serial, err := New(k, m, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(k, m, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	full, err := serial.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop every 3-subset of shards.
	n := k + m
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				mk := func() [][]byte {
					sh := make([][]byte, n)
					for i := range sh {
						if i != a && i != b && i != c {
							sh[i] = append([]byte(nil), full[i]...)
						}
					}
					return sh
				}
				s1, s2 := mk(), mk()
				if err := serial.Reconstruct(s1); err != nil {
					t.Fatal(err)
				}
				if err := par.Reconstruct(s2); err != nil {
					t.Fatal(err)
				}
				for i := range s1 {
					if !bytes.Equal(s1[i], s2[i]) {
						t.Fatalf("erasures {%d,%d,%d}: shard %d differs between serial and parallel", a, b, c, i)
					}
				}
			}
		}
	}
}

// TestVerifyScratchReuse checks Verify still accepts valid parity and
// rejects corruption after the single-scratch rewrite.
func TestVerifyScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	code, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 12345)
	rng.Read(data)
	shards, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := code.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify(valid) = %v, %v", ok, err)
	}
	// Corrupt one byte in each parity shard in turn.
	for i := code.DataShards(); i < code.TotalShards(); i++ {
		shards[i][100] ^= 1
		ok, err := code.Verify(shards)
		if err != nil || ok {
			t.Fatalf("Verify(corrupt parity %d) = %v, %v; want false", i, ok, err)
		}
		shards[i][100] ^= 1
	}
	// Corrupt a data shard.
	shards[0][0] ^= 0xFF
	if ok, _ := code.Verify(shards); ok {
		t.Fatal("Verify accepted corrupted data shard")
	}
}
