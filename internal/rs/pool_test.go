package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeIntoMatchesEncode is the differential check for the pooled
// path: EncodeInto must produce byte-identical shards to Encode for every
// shape and size, including sizes that leave a zero-padded tail in dirty
// pooled memory.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, shape := range [][2]int{{1, 0}, {2, 1}, {4, 2}, {10, 4}} {
		c, err := New(shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 7, 100, 4096, 4097, 70_000} {
			data := make([]byte, n)
			rng.Read(data)
			want, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the pool: acquire, scribble, release, re-acquire.
			s0, err := c.AcquireShards(n)
			if err != nil {
				t.Fatal(err)
			}
			for _, sh := range s0.Shards {
				for i := range sh {
					sh[i] = 0xAA
				}
			}
			s0.Release()
			s, err := c.AcquireShards(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.EncodeInto(data, s); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(want[i], s.Shards[i]) {
					t.Fatalf("k=%d m=%d n=%d: shard %d differs", shape[0], shape[1], n, i)
				}
			}
			s.Release()
		}
	}
}

func TestEncodeIntoShapeErrors(t *testing.T) {
	c, _ := New(4, 2)
	s, err := c.AcquireShards(1000)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if err := c.EncodeInto(nil, s); err == nil {
		t.Fatal("empty data accepted")
	}
	// Wrong size for this set.
	if err := c.EncodeInto(make([]byte, 5000), s); err == nil {
		t.Fatal("mismatched set size accepted")
	}
	other, _ := New(10, 4)
	if err := other.EncodeInto(make([]byte, 1000), s); err == nil {
		t.Fatal("foreign set accepted")
	}
	var nilSet *ShardSet
	nilSet.Release() // nil-safe
}

func TestCachedReturnsSameCode(t *testing.T) {
	a, err := Cached(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Cached(10,4,1) returned distinct codes")
	}
	c, err := Cached(10, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct parallelism shares a code")
	}
	if _, err := Cached(0, 1, 0); err == nil {
		t.Fatal("invalid shape accepted")
	}
	// Encode still works through a cached code.
	data := []byte("cached code smoke test payload")
	shards, err := a.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Join(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
}

// TestEncodeIntoZeroAllocs is the tentpole's steady-state allocation
// gate: a warm AcquireShards → EncodeInto → Release cycle on a
// sub-grain payload (the batched small-stripe hot path) must not touch
// the allocator. Payloads at or above chunkGrain may fan out across
// goroutines, which allocates by design; the batcher flushes stripes
// well below that threshold.
func TestEncodeIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race builds")
	}
	c, err := Cached(10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 48<<10) // shard size ~4.8 KiB, far below chunkGrain
	rand.New(rand.NewSource(7)).Read(data)
	// Warm the pools and the lazily-built gf256 full table.
	for i := 0; i < 8; i++ {
		s, err := c.AcquireShards(len(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EncodeInto(data, s); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		s, _ := c.AcquireShards(len(data))
		c.EncodeInto(data, s)
		s.Release()
	})
	// A genuine per-op allocation reads >= 1.0; fractional values below
	// 0.5 are a stray GC clearing the pools mid-run, not a regression.
	if allocs >= 0.5 {
		t.Fatalf("steady-state EncodeInto allocates %.2f/op, want 0", allocs)
	}
}

// TestVerifyZeroAllocs gates the pooled scrub-path scratch the same way.
func TestVerifyZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in non-race builds")
	}
	c, err := Cached(10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 48<<10)
	rand.New(rand.NewSource(9)).Read(data)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if ok, err := c.Verify(shards); err != nil || !ok {
			t.Fatalf("warm verify: ok=%v err=%v", ok, err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Verify(shards)
	})
	if allocs >= 0.5 {
		t.Fatalf("steady-state Verify allocates %.2f/op, want 0", allocs)
	}
}
