//go:build race

package rs

const raceEnabled = true
