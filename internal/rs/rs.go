// Package rs implements Reed-Solomon erasure coding over GF(2^8).
//
// A Code with k data shards and m parity shards tolerates the loss of any
// m of the n = k+m shards. Encoding is systematic: the first k shards are
// the data itself, so reads that find all data shards intact need no
// decoding. The parity rows come from a Cauchy matrix, every square
// submatrix of which is invertible, guaranteeing the MDS property.
//
// This is the erasure-coding substrate the paper's Figure 1 places in the
// "low cost / low security" quadrant, and the dispersal layer of AONT-RS
// (Resch & Plank, FAST '11). Package shamir provides the non-systematic
// counterpart: per McEliece & Sarwate, Shamir secret sharing *is* a
// non-systematic [n, t] Reed-Solomon code with random high coefficients.
//
// The hot paths run on the table-driven gf256 kernels: each Code caches a
// multiplication table per generator-matrix coefficient at construction,
// and Encode/Reconstruct split their work across goroutines by parity
// row and byte range (see WithParallelism). The §3.2 throughput argument
// of the paper is measured against exactly this path.
package rs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"securearchive/internal/bufpool"
	"securearchive/internal/gf256"
	"securearchive/internal/matrix"
	"securearchive/internal/parallel"
)

// Limits on code parameters. Evaluation points live in GF(256) \ {0}.
const (
	MaxShards = 255
)

// chunkGrain is the minimum byte range a worker takes. At kernel speed a
// grain costs tens of microseconds, comfortably above goroutine overhead;
// payloads below it are encoded inline.
const chunkGrain = 64 << 10

// Errors returned by this package.
var (
	ErrInvalidParams   = errors.New("rs: invalid code parameters")
	ErrTooFewShards    = errors.New("rs: too few shards to reconstruct")
	ErrShardCount      = errors.New("rs: wrong number of shards")
	ErrShardSize       = errors.New("rs: shards have inconsistent sizes")
	ErrEmptyData       = errors.New("rs: empty data")
	ErrInvalidDataSize = errors.New("rs: data size does not match shards")
)

// Code is an immutable [n, k] systematic Reed-Solomon erasure code.
// It is safe for concurrent use.
type Code struct {
	data   int // k
	parity int // m
	// gen is the full n-by-k systematic generator matrix: the top k rows
	// are the identity, the bottom m rows are the Cauchy parity rows.
	gen *matrix.Matrix
	// parityTabs[i][j] is the cached multiplication table for parity row
	// i, data column j — built once in New so repeated Encode calls never
	// re-derive coefficient tables.
	parityTabs [][]*[256]byte
	// par bounds the worker count for Encode/Reconstruct; 0 means
	// GOMAXPROCS.
	par int
}

// Option configures a Code.
type Option func(*Code)

// WithParallelism bounds the number of goroutines Encode, EncodeShards
// and Reconstruct may use. n <= 0 (the default) selects GOMAXPROCS; 1
// forces the serial path.
func WithParallelism(n int) Option {
	return func(c *Code) { c.par = n }
}

// New constructs a code with the given number of data and parity shards.
// data must be >= 1, parity >= 0, and data+parity <= MaxShards.
func New(data, parity int, opts ...Option) (*Code, error) {
	if data < 1 || parity < 0 || data+parity > MaxShards {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrInvalidParams, data, parity)
	}
	n := data + parity
	gen := matrix.New(n, data)
	for i := 0; i < data; i++ {
		gen.Set(i, i, 1)
	}
	if parity > 0 {
		// Cauchy points: xs for parity rows, ys for data columns, disjoint.
		xs := make([]byte, parity)
		ys := make([]byte, data)
		for j := 0; j < data; j++ {
			ys[j] = byte(j)
		}
		for i := 0; i < parity; i++ {
			xs[i] = byte(data + i)
		}
		cauchy := matrix.Cauchy(xs, ys)
		for i := 0; i < parity; i++ {
			copy(gen.Row(data+i), cauchy.Row(i))
		}
	}
	c := &Code{data: data, parity: parity, gen: gen}
	c.parityTabs = rowTables(gen, data, n)
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// codeCache shares constructed Codes across the per-operation Encoding
// values in internal/core: building a Code prices a Cauchy matrix plus a
// table pointer per coefficient, which the seed paid on EVERY
// Encode/Decode call — a fixed tax that dominated small-object puts.
var codeCache sync.Map // cacheKey -> *Code

type cacheKey struct{ data, parity, par int }

// Cached returns a process-shared Code for the given shape and worker
// bound, constructing it at most once. Codes are immutable and safe for
// concurrent use, so sharing is free; par is part of the key because it
// is fixed at construction.
func Cached(data, parity, par int) (*Code, error) {
	key := cacheKey{data, parity, par}
	if v, ok := codeCache.Load(key); ok {
		return v.(*Code), nil
	}
	c, err := New(data, parity, WithParallelism(par))
	if err != nil {
		return nil, err
	}
	v, _ := codeCache.LoadOrStore(key, c)
	return v.(*Code), nil
}

// rowTables caches a gf256 multiplication table pointer per coefficient
// of rows [from, to) of m. The pointers alias the shared 64 KiB full
// table, so this costs one slice of pointers per row.
func rowTables(m *matrix.Matrix, from, to int) [][]*[256]byte {
	tabs := make([][]*[256]byte, to-from)
	for i := from; i < to; i++ {
		row := m.Row(i)
		t := make([]*[256]byte, len(row))
		for j, coeff := range row {
			t[j] = gf256.MulTable(coeff)
		}
		tabs[i-from] = t
	}
	return tabs
}

// mulAcc accumulates dst ^= coeff·src with the 0/1 fast paths, using a
// cached table for the general case.
func mulAcc(coeff byte, tab *[256]byte, src, dst []byte) {
	switch coeff {
	case 0:
	case 1:
		gf256.AddSlice(src, dst)
	default:
		gf256.MulSliceWith(tab, src, dst)
	}
}

// mulAssign overwrites dst = coeff·src with the 0/1 fast paths.
func mulAssign(coeff byte, tab *[256]byte, src, dst []byte) {
	switch coeff {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		gf256.MulSliceAssignWith(tab, src, dst)
	}
}

// DataShards returns k, the number of data shards.
func (c *Code) DataShards() int { return c.data }

// ParityShards returns m, the number of parity shards.
func (c *Code) ParityShards() int { return c.parity }

// TotalShards returns n = k + m.
func (c *Code) TotalShards() int { return c.data + c.parity }

// ShardSize returns the shard length used for a payload of dataLen bytes:
// ceil(dataLen / k).
func (c *Code) ShardSize(dataLen int) int {
	return (dataLen + c.data - 1) / c.data
}

// Split partitions data into exactly k equally sized shards, zero-padding
// the final shard. The shards do not alias data.
func (c *Code) Split(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmptyData
	}
	size := c.ShardSize(len(data))
	shards := make([][]byte, c.data)
	for i := range shards {
		shards[i] = make([]byte, size)
		lo := i * size
		if lo < len(data) {
			copy(shards[i], data[lo:min(lo+size, len(data))])
		}
	}
	return shards, nil
}

// Encode splits data into k shards, computes the m parity shards, and
// returns all n shards. Use Join (with the original length) to recover the
// data after Reconstruct.
func (c *Code) Encode(data []byte) ([][]byte, error) {
	dataShards, err := c.Split(data)
	if err != nil {
		return nil, err
	}
	shards := make([][]byte, c.TotalShards())
	copy(shards, dataShards)
	size := len(dataShards[0])
	for i := c.data; i < c.TotalShards(); i++ {
		shards[i] = make([]byte, size)
	}
	if err := c.EncodeShards(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// EncodeShards computes parity in place: shards must hold n slices of equal
// length, the first k containing data; the last m are overwritten. The
// work is split across goroutines by parity row and byte range, bounded
// by the code's parallelism. Payloads below the parallel grain run fully
// inline — no goroutines, no closure allocation — which is what makes
// the steady-state 0 allocs/op gate hold on the batched small-stripe
// path.
func (c *Code) EncodeShards(shards [][]byte) error {
	if err := c.checkShape(shards, true); err != nil {
		return err
	}
	if c.parity == 0 {
		return nil
	}
	size := len(shards[0])
	if size < chunkGrain || parallel.Workers(c.par) == 1 {
		for i := 0; i < c.parity; i++ {
			c.encodeRowRange(i, 0, size, shards)
		}
		return nil
	}
	c.forRowChunks(c.parity, size, func(i, lo, hi int) {
		c.encodeRowRange(i, lo, hi, shards)
	})
	return nil
}

// encodeRowRange computes parity row i over byte range [lo, hi).
func (c *Code) encodeRowRange(i, lo, hi int, shards [][]byte) {
	row := c.gen.Row(c.data + i)
	tabs := c.parityTabs[i]
	out := shards[c.data+i][lo:hi]
	mulAssign(row[0], tabs[0], shards[0][lo:hi], out)
	for j := 1; j < c.data; j++ {
		mulAcc(row[j], tabs[j], shards[j][lo:hi], out)
	}
}

// ShardSet is a pooled set of shard buffers carved out of one contiguous
// pooled allocation. Acquire with Code.AcquireShards, fill via
// Code.EncodeInto, and Release when the shards have been copied out (the
// cluster copies on Put, so release immediately after dispersal).
type ShardSet struct {
	Shards [][]byte
	buf    *bufpool.Buf
}

var shardSetPool = sync.Pool{New: func() any { return new(ShardSet) }}

// AcquireShards returns a pooled ShardSet holding TotalShards() slices
// of ShardSize(dataLen) bytes each. Contents are NOT zeroed — EncodeInto
// overwrites every byte.
func (c *Code) AcquireShards(dataLen int) (*ShardSet, error) {
	if dataLen <= 0 {
		return nil, ErrEmptyData
	}
	n := c.TotalShards()
	size := c.ShardSize(dataLen)
	s := shardSetPool.Get().(*ShardSet)
	s.buf = bufpool.Get(n * size)
	if cap(s.Shards) < n {
		s.Shards = make([][]byte, n)
	} else {
		s.Shards = s.Shards[:n]
	}
	for i := 0; i < n; i++ {
		s.Shards[i] = s.buf.B[i*size : (i+1)*size : (i+1)*size]
	}
	return s, nil
}

// Release returns the set and its backing buffer to their pools. The
// shard slices must not be used afterwards.
func (s *ShardSet) Release() {
	if s == nil {
		return
	}
	for i := range s.Shards {
		s.Shards[i] = nil
	}
	s.buf.Release()
	s.buf = nil
	shardSetPool.Put(s)
}

// EncodeInto splits data into the set's k data shards (zero-padding the
// final shard) and computes the m parity shards in place — the pooled,
// allocation-free counterpart of Encode. The set must come from
// AcquireShards(len(data)) on the same code.
func (c *Code) EncodeInto(data []byte, s *ShardSet) error {
	if len(data) == 0 {
		return ErrEmptyData
	}
	if len(s.Shards) != c.TotalShards() {
		return fmt.Errorf("%w: set has %d, want %d", ErrShardCount, len(s.Shards), c.TotalShards())
	}
	size := len(s.Shards[0])
	if size != c.ShardSize(len(data)) {
		return fmt.Errorf("%w: shard size %d for %d data bytes", ErrInvalidDataSize, size, len(data))
	}
	for i := 0; i < c.data; i++ {
		lo := i * size
		m := 0
		if lo < len(data) {
			m = copy(s.Shards[i], data[lo:min(lo+size, len(data))])
		}
		// Pooled memory is dirty; zero the padding tail explicitly.
		clear(s.Shards[i][m:])
	}
	return c.EncodeShards(s.Shards)
}

// forRowChunks runs fn(row, lo, hi) over the product of `rows` output
// rows and byte-range chunks of [0, size), in parallel up to the code's
// worker bound. Chunk indices are row-major so one worker streams
// adjacent byte ranges of the same row.
func (c *Code) forRowChunks(rows, size int, fn func(row, lo, hi int)) {
	nchunks := (size + chunkGrain - 1) / chunkGrain
	if nchunks < 1 {
		nchunks = 1
	}
	if workers := parallel.Workers(c.par); nchunks > workers {
		nchunks = workers
	}
	parallel.For(c.par, rows*nchunks, 1, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			row, ck := j/nchunks, j%nchunks
			lo, hi := parallel.Span(size, nchunks, ck)
			fn(row, lo, hi)
		}
	})
}

// Verify recomputes parity from the data shards and reports whether it
// matches the provided parity shards. All n shards must be present.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if err := c.checkShape(shards, true); err != nil {
		return false, err
	}
	if c.parity == 0 {
		return true, nil
	}
	size := len(shards[0])
	// One pooled scratch buffer for all parity rows: the first column
	// overwrites it, so no per-row zeroing pass is needed (scrub loops
	// call Verify per stripe — unpooled scratch was measurable garbage).
	sb := bufpool.Get(size)
	defer sb.Release()
	scratch := sb.B
	for i := 0; i < c.parity; i++ {
		row := c.gen.Row(c.data + i)
		tabs := c.parityTabs[i]
		mulAssign(row[0], tabs[0], shards[0], scratch)
		for j := 1; j < c.data; j++ {
			mulAcc(row[j], tabs[j], shards[j], scratch)
		}
		if !bytes.Equal(scratch, shards[c.data+i]) {
			return false, nil
		}
	}
	return true, nil
}

// Reconstruct fills in missing (nil) shards in place. At least k shards
// must be present. Present shards are never modified; reconstructed shards
// are freshly allocated. Recovery of multiple shards runs in parallel by
// output row and byte range.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: have %d, want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	present := make([]int, 0, c.TotalShards())
	missing := make([]int, 0, c.TotalShards())
	size := -1
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
		present = append(present, i)
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < c.data {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.data)
	}

	// Select k present rows of the generator, invert, recover data shards.
	rows := present[:c.data]
	sub := c.gen.SubMatrix(rows)
	dec, err := sub.Invert()
	if err != nil {
		// Cannot happen for an MDS generator; report rather than panic.
		return fmt.Errorf("rs: decode matrix inversion failed: %w", err)
	}
	inputs := make([][]byte, c.data)
	for i, r := range rows {
		inputs[i] = shards[r]
	}

	// Only compute the data shards we actually need: missing data shards,
	// plus all data shards if any parity shard is missing.
	needAllData := false
	for _, mi := range missing {
		if mi >= c.data {
			needAllData = true
			break
		}
	}
	dataOut := make([][]byte, c.data)
	type job struct {
		out  []byte
		row  []byte
		tabs []*[256]byte
		in   [][]byte
	}
	var jobs []job
	decTabs := rowTables(dec, 0, dec.Rows())
	for d := 0; d < c.data; d++ {
		have := shards[d] != nil
		if have && !needAllData {
			continue
		}
		if have {
			dataOut[d] = shards[d]
			continue
		}
		out := make([]byte, size)
		dataOut[d] = out
		shards[d] = out
		jobs = append(jobs, job{out: out, row: dec.Row(d), tabs: decTabs[d], in: inputs})
	}
	runJobs := func(jobs []job) {
		if len(jobs) == 0 {
			return
		}
		c.forRowChunks(len(jobs), size, func(i, lo, hi int) {
			jb := jobs[i]
			out := jb.out[lo:hi]
			mulAssign(jb.row[0], jb.tabs[0], jb.in[0][lo:hi], out)
			for j := 1; j < len(jb.row); j++ {
				mulAcc(jb.row[j], jb.tabs[j], jb.in[j][lo:hi], out)
			}
		})
	}
	runJobs(jobs)

	// Recompute any missing parity shards from the (now complete) data.
	jobs = jobs[:0]
	for _, mi := range missing {
		if mi < c.data {
			continue
		}
		out := make([]byte, size)
		shards[mi] = out
		jobs = append(jobs, job{out: out, row: c.gen.Row(mi), tabs: c.parityTabs[mi-c.data], in: dataOut})
	}
	runJobs(jobs)
	return nil
}

// Join reassembles the original payload of length dataLen from the k data
// shards (shards[0:k] must all be present, e.g. after Reconstruct).
func (c *Code) Join(shards [][]byte, dataLen int) ([]byte, error) {
	if len(shards) < c.data {
		return nil, fmt.Errorf("%w: have %d, want at least %d", ErrShardCount, len(shards), c.data)
	}
	if dataLen <= 0 {
		return nil, ErrEmptyData
	}
	size := c.ShardSize(dataLen)
	out := make([]byte, 0, dataLen)
	for i := 0; i < c.data && len(out) < dataLen; i++ {
		s := shards[i]
		if s == nil {
			return nil, fmt.Errorf("rs: data shard %d missing: %w", i, ErrTooFewShards)
		}
		if len(s) != size {
			return nil, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrInvalidDataSize, i, len(s), size)
		}
		take := min(size, dataLen-len(out))
		out = append(out, s[:take]...)
	}
	return out, nil
}

func (c *Code) checkShape(shards [][]byte, needAll bool) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: have %d, want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if needAll {
				return fmt.Errorf("%w: shard %d is nil", ErrShardCount, i)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
	}
	return nil
}

// encodeShardsScalar is the seed implementation of EncodeShards on the
// branchy scalar gf256.MulSlice path, retained as the differential oracle
// for tests and the before/after benchmark baseline.
func (c *Code) encodeShardsScalar(shards [][]byte) error {
	if err := c.checkShape(shards, true); err != nil {
		return err
	}
	for i := 0; i < c.parity; i++ {
		row := c.gen.Row(c.data + i)
		out := shards[c.data+i]
		for j := range out {
			out[j] = 0
		}
		for j := 0; j < c.data; j++ {
			gf256.MulSlice(row[j], shards[j], out)
		}
	}
	return nil
}
