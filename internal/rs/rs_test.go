package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewParamValidation(t *testing.T) {
	cases := []struct {
		data, parity int
		ok           bool
	}{
		{1, 0, true},
		{4, 2, true},
		{128, 127, true},
		{0, 2, false},
		{-1, 2, false},
		{4, -1, false},
		{200, 100, false}, // > 255 total
	}
	for _, c := range cases {
		_, err := New(c.data, c.parity)
		if (err == nil) != c.ok {
			t.Errorf("New(%d, %d): err=%v, want ok=%v", c.data, c.parity, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New(%d, %d): error %v is not ErrInvalidParams", c.data, c.parity, err)
		}
	}
}

func TestEncodeJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 4, 10} {
		for _, m := range []int{0, 1, 4} {
			c, err := New(k, m)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 7, 100, 4096, 4097} {
				data := make([]byte, size)
				rng.Read(data)
				shards, err := c.Encode(data)
				if err != nil {
					t.Fatal(err)
				}
				if len(shards) != k+m {
					t.Fatalf("Encode produced %d shards, want %d", len(shards), k+m)
				}
				got, err := c.Join(shards, size)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("k=%d m=%d size=%d: join mismatch", k, m, size)
				}
			}
		}
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	const k, m = 4, 3
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 1000)
	rng.Read(data)
	orig, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}

	// Erase every subset of up to m shards.
	n := k + m
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				erased++
			}
		}
		if erased == 0 || erased > m {
			continue
		}
		shards := make([][]byte, n)
		for i := range shards {
			if mask&(1<<i) == 0 {
				shards[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %#b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("mask %#b: shard %d differs after reconstruct", mask, i)
			}
		}
		got, err := c.Join(shards, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("mask %#b: data mismatch", mask)
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(4, 2)
	data := make([]byte, 100)
	shards, _ := c.Encode(data)
	// Erase 3 shards: only 3 remain < k=4.
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("expected ErrTooFewShards, got %v", err)
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	c, _ := New(3, 2)
	data := []byte("hello world this is a test!")
	shards, _ := c.Encode(data)
	before := make([][]byte, len(shards))
	for i := range shards {
		before[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], before[i]) {
			t.Fatal("Reconstruct modified complete shards")
		}
	}
}

func TestVerify(t *testing.T) {
	c, _ := New(4, 2)
	data := make([]byte, 500)
	rand.New(rand.NewSource(9)).Read(data)
	shards, _ := c.Encode(data)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify on fresh encode: ok=%v err=%v", ok, err)
	}
	shards[5][3] ^= 1 // corrupt one parity byte
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify missed parity corruption: ok=%v err=%v", ok, err)
	}
	shards[5][3] ^= 1
	shards[0][0] ^= 0x80 // corrupt data
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify missed data corruption: ok=%v err=%v", ok, err)
	}
}

func TestVerifyZeroParity(t *testing.T) {
	c, _ := New(3, 0)
	shards, _ := c.Encode([]byte("abcdef"))
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify with m=0: ok=%v err=%v", ok, err)
	}
}

func TestSplitPadding(t *testing.T) {
	c, _ := New(4, 0)
	shards, err := c.Split([]byte{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	// size = ceil(5/4) = 2
	if len(shards[0]) != 2 {
		t.Fatalf("shard size %d, want 2", len(shards[0]))
	}
	want := [][]byte{{1, 2}, {3, 4}, {5, 0}, {0, 0}}
	for i := range want {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d = %v, want %v", i, shards[i], want[i])
		}
	}
}

func TestSplitEmpty(t *testing.T) {
	c, _ := New(4, 0)
	if _, err := c.Split(nil); !errors.Is(err, ErrEmptyData) {
		t.Fatalf("expected ErrEmptyData, got %v", err)
	}
}

func TestJoinErrors(t *testing.T) {
	c, _ := New(3, 1)
	shards, _ := c.Encode([]byte("0123456789"))
	if _, err := c.Join(shards[:2], 10); !errors.Is(err, ErrShardCount) {
		t.Fatalf("short shard list: %v", err)
	}
	shards[1] = nil
	if _, err := c.Join(shards, 10); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("nil data shard: %v", err)
	}
}

func TestEncodeShardsShapeErrors(t *testing.T) {
	c, _ := New(2, 1)
	if err := c.EncodeShards([][]byte{{1}, {2}}); !errors.Is(err, ErrShardCount) {
		t.Fatalf("wrong count: %v", err)
	}
	if err := c.EncodeShards([][]byte{{1}, {2, 3}, {4}}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged: %v", err)
	}
}

func TestPropertyRoundTripQuick(t *testing.T) {
	c, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, eraseSeed int64) bool {
		if len(data) == 0 {
			return true
		}
		shards, err := c.Encode(data)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(eraseSeed))
		for _, i := range rng.Perm(8)[:3] {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		got, err := c.Join(shards, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode10of14_1MiB(b *testing.B) {
	c, _ := New(10, 4)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct10of14_1MiB(b *testing.B) {
	c, _ := New(10, 4)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)
	orig, _ := c.Encode(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(orig))
		copy(shards, orig)
		shards[0], shards[3], shards[11], shards[13] = nil, nil, nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
