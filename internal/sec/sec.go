// Package sec defines the security-classification vocabulary shared by
// the systems and core packages: the axes of the paper's Table 1 and the
// coordinates of its Figure 1.
package sec

import "fmt"

// Class is a confidentiality classification.
type Class int

// Confidentiality classes, ordered by strength.
const (
	// None provides no confidentiality (plaintext, bare erasure coding,
	// replication).
	None Class = iota
	// Computational security rests on hardness assumptions and therefore
	// decays with cryptanalysis — the paper's central worry.
	Computational
	// Entropic security is information-theoretic *conditioned on message
	// min-entropy*: unconditional for high-entropy data, void otherwise.
	Entropic
	// ITSometimes marks systems (PASIS) that are information-theoretic
	// only under some of their deployable configurations.
	ITSometimes
	// IT is unconditional, information-theoretic security.
	IT
)

// String renders the class as Table 1 does.
func (c Class) String() string {
	switch c {
	case None:
		return "None"
	case Computational:
		return "Computational"
	case Entropic:
		return "Entropic"
	case ITSometimes:
		return "ITS (sometimes)"
	case IT:
		return "ITS"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// SecurityLevel maps the class to Figure 1's qualitative x-axis,
// 0 (none) .. 4 (information-theoretic).
func (c Class) SecurityLevel() int { return int(c) }

// CostBand is Table 1's storage-cost column.
type CostBand int

// Cost bands.
const (
	CostLow CostBand = iota
	CostLowHigh
	CostHigh
)

// String renders the band as Table 1 does.
func (b CostBand) String() string {
	switch b {
	case CostLow:
		return "Low"
	case CostLowHigh:
		return "Low-High"
	case CostHigh:
		return "High"
	default:
		return fmt.Sprintf("CostBand(%d)", int(b))
	}
}

// BandFromOverhead buckets a measured bytes-stored-per-byte overhead into
// Table 1's coarse bands: below 2.5× is "Low" (erasure-coding territory),
// at or above n-fold replication territory (≥2.5×) is "High".
func BandFromOverhead(overhead float64) CostBand {
	if overhead < 2.5 {
		return CostLow
	}
	return CostHigh
}

// Profile is one system's full Table 1 row plus measured cost.
type Profile struct {
	System           string
	TransitClass     Class
	RestClass        Class
	MeasuredCost     float64 // bytes stored per plaintext byte
	CostBand         CostBand
	LeakageResilient bool // Figure 1's LRSS distinction
}
