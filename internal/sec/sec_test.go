package sec

import "testing"

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		None:          "None",
		Computational: "Computational",
		Entropic:      "Entropic",
		ITSometimes:   "ITS (sometimes)",
		IT:            "ITS",
		Class(99):     "Class(99)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestSecurityLevelsOrdered(t *testing.T) {
	order := []Class{None, Computational, Entropic, ITSometimes, IT}
	for i := 1; i < len(order); i++ {
		if order[i].SecurityLevel() <= order[i-1].SecurityLevel() {
			t.Fatalf("security levels not strictly increasing at %v", order[i])
		}
	}
}

func TestCostBandStrings(t *testing.T) {
	cases := map[CostBand]string{
		CostLow:      "Low",
		CostLowHigh:  "Low-High",
		CostHigh:     "High",
		CostBand(42): "CostBand(42)",
	}
	for b, want := range cases {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), want)
		}
	}
}

func TestBandFromOverhead(t *testing.T) {
	cases := []struct {
		oh   float64
		want CostBand
	}{
		{1.0, CostLow},
		{1.5, CostLow},
		{2.49, CostLow},
		{2.5, CostHigh},
		{6.0, CostHigh},
		{72.0, CostHigh},
	}
	for _, c := range cases {
		if got := BandFromOverhead(c.oh); got != c.want {
			t.Errorf("BandFromOverhead(%v) = %s, want %s", c.oh, got, c.want)
		}
	}
}
