package shamir_test

import (
	"crypto/rand"
	"fmt"
	"log"

	"securearchive/internal/shamir"
)

// Example shows the basic split/combine cycle: 3-of-5 sharing with
// perfect secrecy below the threshold.
func Example() {
	secret := []byte("meet at the old oak at midnight")
	shares, err := shamir.Split(secret, 5, 3, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	// Any three shares reconstruct…
	got, err := shamir.Combine([]shamir.Share{shares[4], shares[0], shares[2]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %s\n", got)
	// …two do not (and, information-theoretically, cannot).
	_, err = shamir.Combine(shares[:2])
	fmt.Println("with two shares:", err != nil)
	// Output:
	// recovered: meet at the old oak at midnight
	// with two shares: true
}

// ExampleCombineRobust demonstrates Berlekamp–Welch error correction:
// a corrupted share is silently routed around, with no commitments.
func ExampleCombineRobust() {
	secret := []byte("tolerates lies, not just silence")
	shares, err := shamir.Split(secret, 7, 3, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	// A malicious provider rewrites its share entirely.
	for i := range shares[2].Payload {
		shares[2].Payload[i] ^= 0xA5
	}
	got, err := shamir.CombineRobust(shares, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %s\n", got)
	// Output:
	// recovered: tolerates lies, not just silence
}
