package shamir

import (
	"errors"
	"fmt"

	"securearchive/internal/gf256"
)

// ErrTooManyErrors is returned when robust reconstruction cannot find a
// consistent codeword within the declared error budget.
var ErrTooManyErrors = errors.New("shamir: too many corrupted shares")

// CombineRobust reconstructs the secret even when up to maxErrors of the
// provided shares are CORRUPTED (wrong payloads, not merely missing),
// without any commitments or side information. This is the McEliece–
// Sarwate observation (§3.2 of the paper) cashed in: Shamir shares are a
// Reed-Solomon codeword, so Berlekamp–Welch decoding corrects e errors
// whenever len(shares) ≥ t + 2e. POTSHARDS-class systems use exactly
// this to survive malicious storage providers without verifiable
// sharing.
//
// Decoding runs independently per byte position (a corrupted share may
// be corrupted differently at every byte), so cost is
// O(L · (t+2e)³) — acceptable for share-sized objects; systems with
// commitments (vss) identify cheaters more cheaply.
func CombineRobust(shares []Share, maxErrors int) ([]byte, error) {
	if err := validate(shares); err != nil {
		return nil, err
	}
	if maxErrors < 0 {
		return nil, fmt.Errorf("%w: maxErrors=%d", ErrInvalidParams, maxErrors)
	}
	t := int(shares[0].Threshold)
	n := len(shares)
	if n < t+2*maxErrors {
		return nil, fmt.Errorf("%w: correcting %d errors needs %d shares, have %d",
			ErrTooFewShares, maxErrors, t+2*maxErrors, n)
	}
	L := len(shares[0].Payload)
	xs := make([]byte, n)
	for i, s := range shares {
		xs[i] = s.X
	}
	out := make([]byte, L)
	for pos := 0; pos < L; pos++ {
		ys := make([]byte, n)
		for i, s := range shares {
			ys[i] = s.Payload[pos]
		}
		v, err := berlekampWelch(xs, ys, t, maxErrors)
		if err != nil {
			return nil, fmt.Errorf("byte %d: %w", pos, err)
		}
		out[pos] = v
	}
	return out, nil
}

// berlekampWelch decodes one RS symbol position: given n points (x, y) of
// a degree-(t-1) polynomial f with up to e errors, return f(0). It tries
// error counts e' = e, e-1, ..., 0 until a consistent decoding appears.
func berlekampWelch(xs, ys []byte, t, e int) (byte, error) {
	for try := e; try >= 0; try-- {
		if v, ok := bwTry(xs, ys, t, try); ok {
			return v, nil
		}
	}
	return 0, ErrTooManyErrors
}

// bwTry attempts decoding with exactly e errors: solve for the monic
// error locator E (degree e) and Q = f·E (degree < t+e) from
// y_i·E(x_i) = Q(x_i), then check Q divisible by E and that the result
// matches enough points.
func bwTry(xs, ys []byte, t, e int) (byte, bool) {
	n := len(xs)
	qLen := t + e // unknown coefficients of Q: q_0..q_{t+e-1}
	unknowns := qLen + e
	if unknowns == 0 {
		// e == 0 and t == 0 cannot happen (t >= 1); direct interpolation.
		return 0, false
	}
	// Equations: Q(x_i) − y_i·(Σ_{j<e} E_j x_i^j) = y_i·x_i^e, i = 1..n.
	rows := n
	m := make([][]byte, rows)
	for i := 0; i < rows; i++ {
		row := make([]byte, unknowns+1)
		xp := byte(1)
		for j := 0; j < qLen; j++ {
			row[j] = xp
			xp = gf256.Mul(xp, xs[i])
		}
		xp = byte(1)
		for j := 0; j < e; j++ {
			row[qLen+j] = gf256.Mul(ys[i], xp)
			xp = gf256.Mul(xp, xs[i])
		}
		// RHS: y_i · x_i^e. xp is now x_i^e.
		row[unknowns] = gf256.Mul(ys[i], xp)
		m[i] = row
	}
	sol, ok := solveGF256(m, unknowns)
	if !ok {
		return 0, false
	}
	q := sol[:qLen]
	eloc := make([]byte, e+1)
	copy(eloc, sol[qLen:])
	eloc[e] = 1 // monic

	// f = Q / E must divide exactly.
	f, rem := polyDivGF256(q, eloc)
	for _, r := range rem {
		if r != 0 {
			return 0, false
		}
	}
	if len(f) > t {
		return 0, false
	}
	// Verify: f must agree with at least n−e points.
	agree := 0
	for i := range xs {
		if gf256.EvalPoly(f, xs[i]) == ys[i] {
			agree++
		}
	}
	if agree < len(xs)-e {
		return 0, false
	}
	return gf256.EvalPoly(f, 0), true
}

// solveGF256 solves an augmented linear system (rows × (cols+1)) over
// GF(256) by Gaussian elimination. Returns any solution (free variables
// set to zero) or false when inconsistent.
func solveGF256(m [][]byte, cols int) ([]byte, bool) {
	rows := len(m)
	pivotCol := make([]int, 0, cols)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		p := -1
		for i := r; i < rows; i++ {
			if m[i][c] != 0 {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		m[r], m[p] = m[p], m[r]
		inv := gf256.Inv(m[r][c])
		for j := c; j <= cols; j++ {
			m[r][j] = gf256.Mul(m[r][j], inv)
		}
		for i := 0; i < rows; i++ {
			if i == r || m[i][c] == 0 {
				continue
			}
			f := m[i][c]
			for j := c; j <= cols; j++ {
				m[i][j] ^= gf256.Mul(f, m[r][j])
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// Inconsistency: zero row with non-zero RHS.
	for i := r; i < rows; i++ {
		if m[i][cols] != 0 {
			return nil, false
		}
	}
	sol := make([]byte, cols)
	for i, c := range pivotCol {
		sol[c] = m[i][cols]
	}
	return sol, true
}

// polyDivGF256 divides polynomial a by b (both constant-first), returning
// quotient and remainder. b must be non-zero with a non-zero leading
// coefficient (the caller passes a monic divisor).
func polyDivGF256(a, b []byte) (quot, rem []byte) {
	// Trim b.
	db := len(b) - 1
	for db > 0 && b[db] == 0 {
		db--
	}
	r := append([]byte(nil), a...)
	da := len(r) - 1
	for da > 0 && r[da] == 0 {
		da--
	}
	r = r[:da+1]
	if da < db {
		return []byte{0}, r
	}
	quot = make([]byte, da-db+1)
	inv := gf256.Inv(b[db])
	for d := da; d >= db; d-- {
		c := gf256.Mul(r[d], inv)
		quot[d-db] = c
		if c == 0 {
			continue
		}
		for j := 0; j <= db; j++ {
			r[d-db+j] ^= gf256.Mul(c, b[j])
		}
	}
	return quot, r[:db]
}
