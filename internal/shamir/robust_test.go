package shamir

import (
	"bytes"
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"
)

func TestCombineRobustNoErrors(t *testing.T) {
	secret := []byte("no errors is the easy case")
	shares, _ := Split(secret, 7, 3, rand.Reader)
	got, err := CombineRobust(shares, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("mismatch")
	}
}

func TestCombineRobustCorrectsCorruptShares(t *testing.T) {
	secret := []byte("berlekamp-welch earns its keep")
	// n = 7, t = 3: corrects up to e = 2 errors (7 ≥ 3 + 2·2).
	shares, err := Split(secret, 7, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		work := make([]Share, len(shares))
		for i := range shares {
			work[i] = shares[i].Clone()
		}
		// Corrupt two random shares completely.
		bad := rng.Perm(7)[:2]
		for _, b := range bad {
			rng.Read(work[b].Payload)
		}
		got, err := CombineRobust(work, 2)
		if err != nil {
			t.Fatalf("trial %d (bad=%v): %v", trial, bad, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("trial %d: wrong secret", trial)
		}
	}
}

func TestCombineRobustSingleByteTampering(t *testing.T) {
	// Subtle corruption: one flipped bit in one share.
	secret := []byte("even one flipped bit is corrected")
	shares, _ := Split(secret, 6, 3, rand.Reader)
	shares[4].Payload[7] ^= 0x20
	got, err := CombineRobust(shares, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("mismatch")
	}
}

func TestCombineRobustBudgetEnforced(t *testing.T) {
	secret := []byte("x")
	shares, _ := Split(secret, 5, 3, rand.Reader)
	// 5 < 3 + 2·2: asking for e=2 must be refused up front.
	if _, err := CombineRobust(shares, 2); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("budget: %v", err)
	}
	if _, err := CombineRobust(shares, -1); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("negative budget: %v", err)
	}
}

func TestCombineRobustTooManyActualErrors(t *testing.T) {
	secret := []byte("overwhelmed")
	shares, _ := Split(secret, 7, 3, rand.Reader)
	// Corrupt three shares but only budget for two: decoding must fail
	// or — if the corruption happens to form a consistent codeword, which
	// it will not at this length — return the wrong value; we accept only
	// explicit failure or a wrong result, never a silent wrong "success"
	// equal to secret.
	rng := mrand.New(mrand.NewSource(9))
	for _, b := range []int{0, 3, 6} {
		rng.Read(shares[b].Payload)
	}
	got, err := CombineRobust(shares, 2)
	if err == nil && bytes.Equal(got, secret) {
		// Possible only with enormous luck; treat as failure of the test
		// setup rather than the decoder.
		t.Skip("corruption accidentally consistent")
	}
}

func TestCombineRobustMatchesPlainCombine(t *testing.T) {
	secret := make([]byte, 100)
	rand.Read(secret)
	shares, _ := Split(secret, 9, 4, rand.Reader)
	plain, err := Combine(shares[:4])
	if err != nil {
		t.Fatal(err)
	}
	robust, err := CombineRobust(shares, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, robust) {
		t.Fatal("robust and plain reconstruction disagree on clean shares")
	}
}

func TestPolyDivGF256(t *testing.T) {
	// (x^2 + 3x + 2) / (x + 1) = (x + 2), remainder 0 over GF(2^8)?
	// In GF(2^8): (x+1)(x+2) = x^2 + 3x + 2. Verify via multiplication.
	q, rem := polyDivGF256([]byte{2, 3, 1}, []byte{1, 1})
	if len(q) != 2 || q[1] != 1 {
		t.Fatalf("quotient %v", q)
	}
	for _, r := range rem {
		if r != 0 {
			t.Fatalf("remainder %v", rem)
		}
	}
	// Division with remainder: x^2 / (x + 1) → remainder 1.
	_, rem = polyDivGF256([]byte{0, 0, 1}, []byte{1, 1})
	nonzero := false
	for _, r := range rem {
		if r != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expected non-zero remainder")
	}
}

func TestCombineRobustQuick(t *testing.T) {
	// Property: for random secrets and random single-share corruptions,
	// robust reconstruction always recovers the secret.
	rng := mrand.New(mrand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(6)   // 5..10
		tth := 2 + rng.Intn(2) // 2..3
		e := (n - tth) / 2     // max correctable
		if e == 0 {
			continue
		}
		secret := make([]byte, 1+rng.Intn(40))
		rand.Read(secret)
		shares, err := Split(secret, n, tth, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range rng.Perm(n)[:e] {
			rng.Read(shares[b].Payload)
		}
		got, err := CombineRobust(shares, e)
		if err != nil {
			t.Fatalf("trial %d (n=%d t=%d e=%d): %v", trial, n, tth, e, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("trial %d: wrong secret", trial)
		}
	}
}

func BenchmarkCombineRobust7of3e2_1KiB(b *testing.B) {
	secret := make([]byte, 1024)
	rand.Read(secret)
	shares, _ := Split(secret, 7, 3, rand.Reader)
	rand.Read(shares[2].Payload) // one real error in the mix
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CombineRobust(shares, 2); err != nil {
			b.Fatal(err)
		}
	}
}
