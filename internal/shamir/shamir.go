// Package shamir implements Shamir's (t, n) threshold secret sharing over
// GF(2^8) (Shamir, CACM 1979).
//
// A secret of L bytes is split into n shares of L bytes each such that any
// t shares reconstruct the secret exactly, while any t-1 shares are
// statistically independent of the secret: perfect, information-theoretic
// secrecy (ε = 0 in Definition 2.1 of the paper). The construction is
// byte-parallel: for each byte position, a fresh uniformly random
// polynomial f of degree t-1 with f(0) = secret byte is sampled, and share
// i holds f(x_i) for its evaluation point x_i ∈ {1..255}.
//
// Per McEliece & Sarwate (1981), this is exactly a non-systematic [n, t]
// Reed-Solomon code applied to (secret, r_1, ..., r_{t-1}); the erasure
// tolerance of the code is what gives shares their availability property.
// The storage cost — every share as large as the secret — is the provably
// unavoidable price of perfect secrecy that Figure 1 of the paper charts.
//
// Randomness is taken from an injected io.Reader so tests are
// deterministic; production callers pass crypto/rand.Reader.
//
// The byte-parallel structure makes the hot paths embarrassingly
// parallel: every byte position is an independent polynomial. Split and
// Combine evaluate on the table-driven gf256 kernels and split their work
// across goroutines by (share, byte-range) — see WithParallelism. All
// randomness is drawn before any worker starts, so results are
// deterministic for a given reader regardless of parallelism.
package shamir

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/bufpool"
	"securearchive/internal/gf256"
	"securearchive/internal/parallel"
)

// chunkGrain is the minimum byte range a worker takes; payloads below it
// are processed inline.
const chunkGrain = 64 << 10

// Option configures the Split/Combine hot paths.
type Option func(*config)

type config struct {
	par int
}

// WithParallelism bounds the number of goroutines Split, SplitAt, Combine
// and CombineAt may use. n <= 0 (the default) selects GOMAXPROCS; 1
// forces the serial path.
func WithParallelism(n int) Option {
	return func(c *config) { c.par = n }
}

func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Errors returned by this package.
var (
	ErrInvalidParams    = errors.New("shamir: invalid parameters")
	ErrEmptySecret      = errors.New("shamir: empty secret")
	ErrTooFewShares     = errors.New("shamir: not enough shares to reconstruct")
	ErrDuplicateShare   = errors.New("shamir: duplicate share index")
	ErrInconsistent     = errors.New("shamir: shares are inconsistent")
	ErrPayloadSize      = errors.New("shamir: share payloads have different sizes")
	ErrInvalidShareX    = errors.New("shamir: share evaluation point must be non-zero")
	ErrInvalidThreshold = errors.New("shamir: shares disagree on threshold")
)

// MaxShares is the maximum n: the non-zero points of GF(256).
const MaxShares = 255

// Share is one participant's piece of a split secret.
type Share struct {
	// X is the GF(256) evaluation point, in 1..255. Zero is reserved for
	// the secret itself and is never a valid share point.
	X byte
	// Threshold is t, the number of shares needed for reconstruction.
	// It is carried in every share so that reconstruction is self-
	// describing; it is not secret.
	Threshold byte
	// Payload holds the share bytes, the same length as the secret.
	Payload []byte
}

// Clone returns a deep copy of the share.
func (s Share) Clone() Share {
	p := make([]byte, len(s.Payload))
	copy(p, s.Payload)
	return Share{X: s.X, Threshold: s.Threshold, Payload: p}
}

// Split shares secret into n shares with reconstruction threshold t,
// 1 <= t <= n <= MaxShares, reading randomness from rnd. Share i is
// assigned evaluation point i+1.
func Split(secret []byte, n, t int, rnd io.Reader, opts ...Option) ([]Share, error) {
	xs := make([]byte, n)
	for i := range xs {
		xs[i] = byte(i + 1)
	}
	return SplitAt(secret, xs, t, rnd, opts...)
}

// SplitAt is Split with caller-chosen distinct non-zero evaluation points,
// one per share. It is used by the proactive and packed layers, which need
// control over point assignment.
func SplitAt(secret []byte, xs []byte, t int, rnd io.Reader, opts ...Option) ([]Share, error) {
	cfg := resolve(opts)
	n := len(xs)
	if t < 1 || t > n || n > MaxShares {
		return nil, fmt.Errorf("%w: t=%d n=%d", ErrInvalidParams, t, n)
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}
	var seen [256]bool
	for _, x := range xs {
		if x == 0 {
			return nil, ErrInvalidShareX
		}
		if seen[x] {
			return nil, fmt.Errorf("%w: x=%d", ErrDuplicateShare, x)
		}
		seen[x] = true
	}

	// Coefficient blocks: block 0 is the secret, blocks 1..t-1 are random.
	// All randomness is drawn here, before any worker starts, so the output
	// does not depend on goroutine scheduling. The random blocks are pure
	// scratch — dead once the Horner pass finishes — so they live in one
	// pooled buffer; a single ReadFull draws the same bytes in the same
	// order as the seed's per-block reads, keeping seeded tests stable.
	L := len(secret)
	coeffs := make([][]byte, t)
	coeffs[0] = secret
	if t > 1 {
		cb := bufpool.Get((t - 1) * L)
		defer cb.Release()
		if _, err := io.ReadFull(rnd, cb.B); err != nil {
			return nil, fmt.Errorf("shamir: reading randomness: %w", err)
		}
		for j := 1; j < t; j++ {
			coeffs[j] = cb.B[(j-1)*L : j*L : j*L]
		}
	}

	shares := make([]Share, n)
	tabs := make([]*[256]byte, n)
	for i, x := range xs {
		shares[i] = Share{X: x, Threshold: byte(t), Payload: make([]byte, L)}
		tabs[i] = gf256.MulTable(x)
	}

	// Every byte position is an independent polynomial, so the Horner
	// evaluation splits freely across both shares and byte ranges. The job
	// space is (share × chunk), row-major so one worker streams through a
	// contiguous byte range of one share.
	nchunks := min((L+chunkGrain-1)/chunkGrain, parallel.Workers(cfg.par))
	if nchunks < 1 {
		nchunks = 1
	}
	parallel.For(cfg.par, n*nchunks, 1, func(jlo, jhi int) {
		for job := jlo; job < jhi; job++ {
			i, ck := job/nchunks, job%nchunks
			lo, hi := parallel.Span(L, nchunks, ck)
			payload := shares[i].Payload[lo:hi]
			// Horner over blocks: payload = ((c_{t-1}·x + c_{t-2})·x + ...)·x + c_0
			copy(payload, coeffs[t-1][lo:hi])
			for j := t - 2; j >= 0; j-- {
				gf256.MulSliceAssignWith(tabs[i], payload, payload)
				gf256.AddSlice(coeffs[j][lo:hi], payload)
			}
		}
	})
	return shares, nil
}

// Combine reconstructs the secret from at least t shares. Extra shares
// beyond the threshold are used as a consistency check: if they do not lie
// on the same degree-(t-1) polynomial, ErrInconsistent is returned. This
// detects (but does not identify) corrupted shares; for identification use
// the vss package.
func Combine(shares []Share, opts ...Option) ([]byte, error) {
	if err := validate(shares); err != nil {
		return nil, err
	}
	cfg := resolve(opts)
	t := int(shares[0].Threshold)
	secret := combineAt(shares[:t], 0, cfg)
	// Consistency check with surplus shares: each extra share must match
	// the polynomial interpolated from the first t.
	for _, extra := range shares[t:] {
		pred := combineAt(shares[:t], extra.X, cfg)
		for i := range pred {
			if pred[i] != extra.Payload[i] {
				return nil, fmt.Errorf("%w: share x=%d off-polynomial at byte %d", ErrInconsistent, extra.X, i)
			}
		}
	}
	return secret, nil
}

// CombineAt evaluates the sharing polynomial at an arbitrary point x from
// at least t shares. CombineAt(shares, 0) reconstructs the secret;
// non-zero x yields the share that a participant with point x would hold,
// which is what verifiable share redistribution needs.
func CombineAt(shares []Share, x byte, opts ...Option) ([]byte, error) {
	if err := validate(shares); err != nil {
		return nil, err
	}
	t := int(shares[0].Threshold)
	return combineAt(shares[:t], x, resolve(opts)), nil
}

func combineAt(shares []Share, x byte, cfg config) []byte {
	xs := make([]byte, len(shares))
	for i, s := range shares {
		xs[i] = s.X
	}
	lc := gf256.LagrangeCoeffs(xs, x)
	L := len(shares[0].Payload)
	out := make([]byte, L)
	// Interpolation is a dot product per byte position; chunk the byte
	// range so each worker owns a disjoint slice of out.
	parallel.For(cfg.par, L, chunkGrain, func(lo, hi int) {
		for i, s := range shares {
			gf256.MulSliceTable(lc[i], s.Payload[lo:hi], out[lo:hi])
		}
	})
	return out
}

func validate(shares []Share) error {
	if len(shares) == 0 {
		return ErrTooFewShares
	}
	t := shares[0].Threshold
	if t == 0 {
		return fmt.Errorf("%w: threshold 0", ErrInvalidParams)
	}
	if len(shares) < int(t) {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), t)
	}
	L := len(shares[0].Payload)
	var seen [256]bool
	for _, s := range shares {
		if s.Threshold != t {
			return ErrInvalidThreshold
		}
		if s.X == 0 {
			return ErrInvalidShareX
		}
		if seen[s.X] {
			return fmt.Errorf("%w: x=%d", ErrDuplicateShare, s.X)
		}
		seen[s.X] = true
		if len(s.Payload) != L {
			return ErrPayloadSize
		}
	}
	if L == 0 {
		return ErrEmptySecret
	}
	return nil
}

// Add returns the share-wise sum of two sharings with identical point sets
// and thresholds. Because sharing is linear, the result is a valid sharing
// of the sum (XOR) of the two secrets. This homomorphism is the engine of
// proactive refresh: adding a sharing of zero re-randomises every share
// without touching the secret.
func Add(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: share count %d != %d", ErrInvalidParams, len(a), len(b))
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].X != b[i].X {
			return nil, fmt.Errorf("%w: x mismatch at %d (%d != %d)", ErrInvalidParams, i, a[i].X, b[i].X)
		}
		if a[i].Threshold != b[i].Threshold {
			return nil, ErrInvalidThreshold
		}
		if len(a[i].Payload) != len(b[i].Payload) {
			return nil, ErrPayloadSize
		}
		p := make([]byte, len(a[i].Payload))
		copy(p, a[i].Payload)
		gf256.AddSlice(b[i].Payload, p)
		out[i] = Share{X: a[i].X, Threshold: a[i].Threshold, Payload: p}
	}
	return out, nil
}
