package shamir

import (
	"bytes"
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	secret := []byte("the archive outlives the cipher")
	for _, tc := range []struct{ n, th int }{
		{1, 1}, {2, 2}, {5, 3}, {8, 4}, {255, 128},
	} {
		shares, err := Split(secret, tc.n, tc.th, rand.Reader)
		if err != nil {
			t.Fatalf("Split(n=%d t=%d): %v", tc.n, tc.th, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("got %d shares, want %d", len(shares), tc.n)
		}
		got, err := Combine(shares[:tc.th])
		if err != nil {
			t.Fatalf("Combine(n=%d t=%d): %v", tc.n, tc.th, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("n=%d t=%d: secret mismatch", tc.n, tc.th)
		}
	}
}

func TestCombineAnySubset(t *testing.T) {
	secret := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF}
	shares, err := Split(secret, 6, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		idx := rng.Perm(6)[:3]
		sub := []Share{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
		got, err := Combine(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("subset %v: mismatch", idx)
		}
	}
}

func TestCombineWithSurplusSharesChecksConsistency(t *testing.T) {
	secret := []byte("surplus")
	shares, _ := Split(secret, 5, 2, rand.Reader)
	if _, err := Combine(shares); err != nil {
		t.Fatalf("consistent surplus shares rejected: %v", err)
	}
	shares[4].Payload[0] ^= 1
	if _, err := Combine(shares); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("corrupted surplus share not detected: %v", err)
	}
}

func TestTooFewShares(t *testing.T) {
	shares, _ := Split([]byte("x"), 5, 3, rand.Reader)
	if _, err := Combine(shares[:2]); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("expected ErrTooFewShares, got %v", err)
	}
	if _, err := Combine(nil); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("expected ErrTooFewShares for empty input, got %v", err)
	}
}

func TestDuplicateShareRejected(t *testing.T) {
	shares, _ := Split([]byte("x"), 3, 2, rand.Reader)
	dup := []Share{shares[0], shares[0]}
	if _, err := Combine(dup); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("expected ErrDuplicateShare, got %v", err)
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Split([]byte("x"), 3, 0, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("t=0: %v", err)
	}
	if _, err := Split([]byte("x"), 3, 4, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("t>n: %v", err)
	}
	if _, err := Split([]byte("x"), 256, 2, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("n>255: %v", err)
	}
	if _, err := Split(nil, 3, 2, rand.Reader); !errors.Is(err, ErrEmptySecret) {
		t.Errorf("empty secret: %v", err)
	}
	if _, err := SplitAt([]byte("x"), []byte{0, 1}, 2, rand.Reader); !errors.Is(err, ErrInvalidShareX) {
		t.Errorf("x=0: %v", err)
	}
	if _, err := SplitAt([]byte("x"), []byte{1, 1}, 2, rand.Reader); !errors.Is(err, ErrDuplicateShare) {
		t.Errorf("dup x: %v", err)
	}
}

// TestPerfectSecrecy verifies the information-theoretic property on a
// 1-byte secret with t=2: for a fixed share observed by the adversary,
// every secret value remains possible (in fact equally likely over the
// choice of the random coefficient). We enumerate: for share (x, y), for
// every candidate secret s there must exist exactly one coefficient c with
// s + c*x = y.
func TestPerfectSecrecy(t *testing.T) {
	secret := []byte{0x42}
	shares, err := Split(secret, 3, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	observed := shares[0]
	count := 0
	for s := 0; s < 256; s++ {
		for c := 0; c < 256; c++ {
			// f(x) = s + c·x
			y := byte(s) ^ mulByte(byte(c), observed.X)
			if y == observed.Payload[0] {
				count++
			}
		}
	}
	if count != 256 {
		t.Fatalf("observed share is consistent with %d (secret, coeff) pairs, want 256 (one per secret)", count)
	}
}

func mulByte(a, b byte) byte {
	// Schoolbook GF(2^8) multiply with poly 0x11B, independent of the
	// package's table implementation.
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// TestShareDistributionUniform checks empirically that a single share byte
// is uniform regardless of the secret: chi-squared over 256 buckets.
func TestShareDistributionUniform(t *testing.T) {
	const trials = 25600
	counts := make([]int, 256)
	secret := []byte{0xFF} // fixed, adversarially "structured" secret
	for i := 0; i < trials; i++ {
		shares, err := Split(secret, 2, 2, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		counts[shares[0].Payload[0]]++
	}
	expected := float64(trials) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom; 99.99% quantile ≈ 368. Flag only gross
	// non-uniformity, this is a smoke test not a NIST suite.
	if chi2 > 400 {
		t.Fatalf("share byte distribution non-uniform: chi2=%.1f", chi2)
	}
}

func TestCombineAtRecreatesShares(t *testing.T) {
	secret := []byte("redistribute me")
	shares, _ := Split(secret, 5, 3, rand.Reader)
	// Evaluating at x of share 4 from shares 0..2 must reproduce share 4.
	got, err := CombineAt(shares[:3], shares[4].X)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shares[4].Payload) {
		t.Fatal("CombineAt did not reproduce an existing share")
	}
	// And at 0 it is the secret.
	got, err = CombineAt(shares[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("CombineAt(0) is not the secret")
	}
}

func TestAddHomomorphism(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{0xF0, 0x0F, 0xAA, 0x55}
	sa, _ := Split(a, 4, 2, rand.Reader)
	sb, _ := Split(b, 4, 2, rand.Reader)
	sum, err := Add(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(sum[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != a[i]^b[i] {
			t.Fatalf("Add homomorphism broken at byte %d", i)
		}
	}
}

func TestAddZeroSharingRefreshes(t *testing.T) {
	secret := []byte("refresh")
	orig, _ := Split(secret, 4, 2, rand.Reader)
	zero, _ := Split(make([]byte, len(secret)), 4, 2, rand.Reader)
	// A sharing of zero has random non-constant coefficients, so shares
	// change; but the sum still encodes the secret. (The zero sharing here
	// shares the literal zero string, which is what Herzberg refresh does
	// modulo the f(0)=0 constraint; pss package handles that precisely.)
	refreshed, err := Add(orig, zero)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(refreshed[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("refreshed shares do not reconstruct the secret")
	}
}

func TestAddValidation(t *testing.T) {
	sa, _ := Split([]byte("ab"), 3, 2, rand.Reader)
	sb, _ := Split([]byte("cd"), 4, 2, rand.Reader)
	if _, err := Add(sa, sb); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("count mismatch: %v", err)
	}
	sc, _ := Split([]byte("ef"), 3, 3, rand.Reader)
	if _, err := Add(sa, sc); !errors.Is(err, ErrInvalidThreshold) {
		t.Fatalf("threshold mismatch: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	shares, _ := Split([]byte("orig"), 2, 2, rand.Reader)
	c := shares[0].Clone()
	c.Payload[0] ^= 0xFF
	if shares[0].Payload[0] == c.Payload[0] {
		t.Fatal("Clone shares payload storage")
	}
}

func TestPropertyQuickRoundTrip(t *testing.T) {
	f := func(secret []byte, seed int64) bool {
		if len(secret) == 0 {
			return true
		}
		shares, err := Split(secret, 7, 4, rand.Reader)
		if err != nil {
			return false
		}
		rng := mrand.New(mrand.NewSource(seed))
		idx := rng.Perm(7)[:4]
		sub := make([]Share, 4)
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := Combine(sub)
		return err == nil && bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplit8of5_64KiB(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, 8, 5, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine5_64KiB(b *testing.B) {
	secret := make([]byte, 64<<10)
	rand.Read(secret)
	shares, _ := Split(secret, 8, 5, rand.Reader)
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:5]); err != nil {
			b.Fatal(err)
		}
	}
}
