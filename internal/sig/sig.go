// Package sig provides a registry of digital-signature schemes with
// explicit lifetimes, backing the timestamp-chain integrity layer (§3.3).
//
// The paper's integrity argument rests on *rotation*: any one
// computationally secure signature will eventually fall, but a chain of
// signatures stays trustworthy as long as each signature was applied
// while its scheme was still unbroken. To make that argument executable,
// every scheme here can be marked broken at a simulation epoch, and
// verification is always asked relative to an epoch. Three stdlib scheme
// families are registered — Ed25519, ECDSA-P256, and RSA-PSS-2048 — three
// independent mathematical assumptions for the rotation schedule to walk
// through.
package sig

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Scheme names a registered signature scheme.
type Scheme string

// Registered schemes.
const (
	Ed25519    Scheme = "ed25519"
	ECDSAP256  Scheme = "ecdsa-p256"
	RSAPSS2048 Scheme = "rsa-pss-2048"
)

// Errors returned by this package.
var (
	ErrUnknownScheme = errors.New("sig: unknown scheme")
	ErrBadSignature  = errors.New("sig: signature verification failed")
	ErrBadKey        = errors.New("sig: malformed key")
)

// KeyPair holds one scheme instance's keys, serialised for storage.
type KeyPair struct {
	Scheme  Scheme
	Public  []byte
	private crypto.Signer
}

// Signer produces and verifies signatures for one scheme.
type Signer interface {
	// Scheme returns the registry name.
	Scheme() Scheme
	// Generate creates a key pair using rnd.
	Generate(rnd io.Reader) (*KeyPair, error)
	// Sign signs the message digest context with the key pair.
	Sign(kp *KeyPair, msg []byte, rnd io.Reader) ([]byte, error)
	// Verify checks a signature against a serialised public key.
	Verify(public, msg, sigBytes []byte) error
}

var registry = map[Scheme]Signer{
	Ed25519:    ed25519Signer{},
	ECDSAP256:  ecdsaSigner{},
	RSAPSS2048: rsaSigner{},
}

// Get returns the Signer for a scheme.
func Get(s Scheme) (Signer, error) {
	sg, ok := registry[s]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, s)
	}
	return sg, nil
}

// Schemes lists registered schemes in deterministic order.
func Schemes() []Scheme {
	out := make([]Scheme, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---- Ed25519 ----

type ed25519Signer struct{}

func (ed25519Signer) Scheme() Scheme { return Ed25519 }

func (e ed25519Signer) Generate(rnd io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("sig: %w", err)
	}
	return &KeyPair{Scheme: Ed25519, Public: pub, private: priv}, nil
}

func (e ed25519Signer) Sign(kp *KeyPair, msg []byte, rnd io.Reader) ([]byte, error) {
	priv, ok := kp.private.(ed25519.PrivateKey)
	if !ok {
		return nil, ErrBadKey
	}
	return ed25519.Sign(priv, msg), nil
}

func (e ed25519Signer) Verify(public, msg, sigBytes []byte) error {
	if len(public) != ed25519.PublicKeySize {
		return ErrBadKey
	}
	if !ed25519.Verify(ed25519.PublicKey(public), msg, sigBytes) {
		return ErrBadSignature
	}
	return nil
}

// ---- ECDSA P-256 ----

type ecdsaSigner struct{}

func (ecdsaSigner) Scheme() Scheme { return ECDSAP256 }

func (ecdsaSigner) Generate(rnd io.Reader) (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rnd)
	if err != nil {
		return nil, fmt.Errorf("sig: %w", err)
	}
	pub, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("sig: %w", err)
	}
	return &KeyPair{Scheme: ECDSAP256, Public: pub, private: priv}, nil
}

func (ecdsaSigner) Sign(kp *KeyPair, msg []byte, rnd io.Reader) ([]byte, error) {
	priv, ok := kp.private.(*ecdsa.PrivateKey)
	if !ok {
		return nil, ErrBadKey
	}
	digest := sha256.Sum256(msg)
	return ecdsa.SignASN1(rnd, priv, digest[:])
}

func (ecdsaSigner) Verify(public, msg, sigBytes []byte) error {
	pubAny, err := x509.ParsePKIXPublicKey(public)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	pub, ok := pubAny.(*ecdsa.PublicKey)
	if !ok {
		return ErrBadKey
	}
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(pub, digest[:], sigBytes) {
		return ErrBadSignature
	}
	return nil
}

// ---- RSA-PSS 2048 ----

type rsaSigner struct{}

func (rsaSigner) Scheme() Scheme { return RSAPSS2048 }

func (rsaSigner) Generate(rnd io.Reader) (*KeyPair, error) {
	priv, err := rsa.GenerateKey(rnd, 2048)
	if err != nil {
		return nil, fmt.Errorf("sig: %w", err)
	}
	pub, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("sig: %w", err)
	}
	return &KeyPair{Scheme: RSAPSS2048, Public: pub, private: priv}, nil
}

func (rsaSigner) Sign(kp *KeyPair, msg []byte, rnd io.Reader) ([]byte, error) {
	priv, ok := kp.private.(*rsa.PrivateKey)
	if !ok {
		return nil, ErrBadKey
	}
	digest := sha256.Sum256(msg)
	return rsa.SignPSS(rnd, priv, crypto.SHA256, digest[:], nil)
}

func (rsaSigner) Verify(public, msg, sigBytes []byte) error {
	pubAny, err := x509.ParsePKIXPublicKey(public)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	pub, ok := pubAny.(*rsa.PublicKey)
	if !ok {
		return ErrBadKey
	}
	digest := sha256.Sum256(msg)
	if err := rsa.VerifyPSS(pub, crypto.SHA256, digest[:], sigBytes, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}

// BreakSchedule records the simulation epoch at which each scheme falls to
// cryptanalysis. Schemes absent from the map never break. The adversary
// and timestamp packages share this type.
type BreakSchedule map[Scheme]int

// BrokenAt reports whether s is broken at epoch e.
func (b BreakSchedule) BrokenAt(s Scheme, e int) bool {
	be, ok := b[s]
	return ok && e >= be
}
