package sig

import (
	"crypto/rand"
	"errors"
	"testing"
)

func TestAllSchemesSignVerify(t *testing.T) {
	msg := []byte("long-term integrity needs rotation")
	for _, s := range Schemes() {
		signer, err := Get(s)
		if err != nil {
			t.Fatal(err)
		}
		kp, err := signer.Generate(rand.Reader)
		if err != nil {
			t.Fatalf("%s generate: %v", s, err)
		}
		if kp.Scheme != s {
			t.Fatalf("%s: keypair scheme mismatch", s)
		}
		sigBytes, err := signer.Sign(kp, msg, rand.Reader)
		if err != nil {
			t.Fatalf("%s sign: %v", s, err)
		}
		if err := signer.Verify(kp.Public, msg, sigBytes); err != nil {
			t.Fatalf("%s verify: %v", s, err)
		}
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	msg := []byte("authentic")
	for _, s := range Schemes() {
		signer, _ := Get(s)
		kp, _ := signer.Generate(rand.Reader)
		sigBytes, _ := signer.Sign(kp, msg, rand.Reader)
		if err := signer.Verify(kp.Public, []byte("forgery!!"), sigBytes); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("%s: tampered message accepted: %v", s, err)
		}
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	msg := []byte("authentic")
	for _, s := range Schemes() {
		signer, _ := Get(s)
		kp, _ := signer.Generate(rand.Reader)
		sigBytes, _ := signer.Sign(kp, msg, rand.Reader)
		sigBytes[0] ^= 1
		if err := signer.Verify(kp.Public, msg, sigBytes); err == nil {
			t.Fatalf("%s: tampered signature accepted", s)
		}
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	msg := []byte("authentic")
	for _, s := range Schemes() {
		signer, _ := Get(s)
		kp1, _ := signer.Generate(rand.Reader)
		kp2, _ := signer.Generate(rand.Reader)
		sigBytes, _ := signer.Sign(kp1, msg, rand.Reader)
		if err := signer.Verify(kp2.Public, msg, sigBytes); err == nil {
			t.Fatalf("%s: wrong key accepted", s)
		}
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := Get("dsa-512"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("unknown scheme: %v", err)
	}
}

func TestBadPublicKey(t *testing.T) {
	for _, s := range Schemes() {
		signer, _ := Get(s)
		if err := signer.Verify([]byte{1, 2, 3}, []byte("m"), []byte("s")); err == nil {
			t.Fatalf("%s: garbage public key accepted", s)
		}
	}
}

func TestBreakSchedule(t *testing.T) {
	b := BreakSchedule{Ed25519: 100, ECDSAP256: 200}
	if b.BrokenAt(Ed25519, 99) {
		t.Fatal("broken before its break epoch")
	}
	if !b.BrokenAt(Ed25519, 100) {
		t.Fatal("not broken at its break epoch")
	}
	if !b.BrokenAt(Ed25519, 5000) {
		t.Fatal("not broken after its break epoch")
	}
	if b.BrokenAt(RSAPSS2048, 1<<40) {
		t.Fatal("unscheduled scheme reported broken")
	}
}

func TestSchemesDeterministicOrder(t *testing.T) {
	a := Schemes()
	b := Schemes()
	if len(a) != 3 {
		t.Fatalf("%d schemes, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Schemes() order not deterministic")
		}
	}
}

func BenchmarkSignEd25519(b *testing.B) {
	signer, _ := Get(Ed25519)
	kp, _ := signer.Generate(rand.Reader)
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signer.Sign(kp, msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyEd25519(b *testing.B) {
	signer, _ := Get(Ed25519)
	kp, _ := signer.Generate(rand.Reader)
	msg := make([]byte, 256)
	s, _ := signer.Sign(kp, msg, rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := signer.Verify(kp.Public, msg, s); err != nil {
			b.Fatal(err)
		}
	}
}
