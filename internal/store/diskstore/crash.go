package diskstore

// Injected crash points. Each simulates kill -9 at a precise instant in
// the commit protocol: the store drops every byte not yet fsynced (the
// page cache a power cut would eat), closes its handles, and fails all
// further operations with ErrCrashed. Tests then Open the directory
// again and assert what recovery promises for that instant.

// CrashPoint names an instant to die at. The zero value never fires.
type CrashPoint int

const (
	// CrashNone disarms injection.
	CrashNone CrashPoint = iota
	// CrashMidSegmentAppend dies halfway through appending a shard body
	// to a segment, with the torn half made durable — the classic torn
	// write. No WAL record references it, so recovery must simply never
	// trust the bytes.
	CrashMidSegmentAppend
	// CrashBeforeWALSync dies during a commit point after the segments
	// are durable but before the WAL record is: half the record's frame
	// is made durable (a torn log tail), the rest is lost. Recovery must
	// truncate the tail and treat the operation as never having happened.
	CrashBeforeWALSync
	// CrashAfterWALSync dies after the commit record is fully durable but
	// before the in-memory index flip. The operation returns ErrCrashed
	// to its caller, yet recovery must find it committed — the WAL, not
	// the process's memory, is the truth.
	CrashAfterWALSync
)

// SetCrashPoint arms (or with CrashNone disarms) the next matching
// operation to crash the store.
func (s *Store) SetCrashPoint(p CrashPoint) {
	s.mu.Lock()
	s.crash = p
	s.mu.Unlock()
}

// dieMidAppend writes the first half of the segment record, makes the
// torn bytes durable, and crashes. Caller holds s.mu.
func (s *Store) dieMidAppend(sf *segFile, rec []byte) error {
	half := rec[:len(rec)/2]
	if len(half) > 0 {
		if _, err := sf.af.append(half); err == nil {
			sf.af.sync()
		}
	}
	return s.crashNow()
}

// dieBeforeWALSync writes half of the commit record's frame to the WAL,
// makes the torn tail durable, and crashes — the record itself never
// becomes durable. Caller holds s.mu.
func (s *Store) dieBeforeWALSync(rec []byte) error {
	half := rec[:len(rec)/2]
	if len(half) > 0 {
		if _, err := s.wal.append(half); err == nil {
			s.wal.sync()
		}
	}
	return s.crashNow()
}

// dieAfterWALSync makes the already-appended commit record durable for
// real, then crashes before the caller can flip its in-memory state.
// Caller holds s.mu.
func (s *Store) dieAfterWALSync() error {
	s.wal.sync()
	return s.crashNow()
}

// crashNow is the shared death: every file loses its un-fsynced suffix
// (the page cache at power cut), handles close, and the store is dead.
// Always returns ErrCrashed. Caller holds s.mu.
func (s *Store) crashNow() error {
	s.wal.truncate(s.wal.synced)
	for _, nd := range s.nodes {
		for _, sf := range nd.segs {
			sf.af.truncate(sf.af.synced)
		}
	}
	s.closeFiles()
	s.dead = ErrCrashed
	s.crash = CrashNone
	return ErrCrashed
}
