// Package diskstore is the durable store.Store: shard bodies live in
// per-node append-only segment files (archival data is write-once —
// sequential segments beat a KV store for bulk bodies), and a single
// shared write-ahead log carries the stage/commit/abort/delete protocol.
// A multi-shard CommitStage is one WAL record whose fsync is the commit
// point: after a kill -9 at any instant, Open replays the log and the
// archive holds either the whole committed stripe or none of it — never
// a mix, and never an orphaned stage.
//
// Layout under the root directory:
//
//	meta.json            — {"version":1,"nodes":N}, written at creation
//	wal                  — the shared log (see wal.go for framing)
//	node-00/00000001.seg — node 0's segment files, numbered, append-only
//	...
//
// Fsync policy (store.Config.Fsync): "commit" (default) fsyncs touched
// segments before each commit-point record (commit, put, delete) and
// then the WAL — one ordered pair of fsyncs per durable decision;
// "always" additionally syncs every segment append and stage record;
// "never" skips fsync entirely (still recovers from process kill, not
// from power loss). Stage and abort records are never individually
// fsynced even under "commit": a lost stage is exactly an aborted one.
package diskstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"securearchive/internal/store"
)

// Fsync policies.
const (
	FsyncCommit = "commit"
	FsyncAlways = "always"
	FsyncNever  = "never"
)

// DefaultMaxSegmentBytes rolls segments at 64 MiB — large enough that
// multi-MiB shards stay sequential, small enough that a torn tail never
// strands much space.
const DefaultMaxSegmentBytes = 64 << 20

// Errors.
var (
	// ErrCrashed is returned by every operation after an injected crash
	// point fired (and by operations on a closed store).
	ErrCrashed = errors.New("diskstore: store crashed")
	// ErrClosed is returned by operations on a Close()d store.
	ErrClosed = errors.New("diskstore: store closed")
)

// Option configures Open.
type Option func(*Store)

// WithFsync selects the durability policy: FsyncCommit (default),
// FsyncAlways or FsyncNever.
func WithFsync(mode string) Option {
	return func(s *Store) {
		if mode != "" {
			s.fsync = mode
		}
	}
}

// WithMaxSegmentBytes caps segment files before the writer rolls over.
func WithMaxSegmentBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.maxSeg = n
		}
	}
}

// Store implements store.Store over segments + WAL. One mutex guards the
// whole store: every operation is a handful of map touches plus file
// I/O against a single shared log, so finer locking would only
// re-serialise on the WAL anyway. (The cluster's concurrency lives above
// this — encoding, probing, retry — not in the at-rest byte store.)
type Store struct {
	dir    string
	fsync  string
	maxSeg int64

	mu    sync.Mutex
	wal   *appendFile
	nodes []*diskNode
	// dead, once set, fails every subsequent operation: ErrCrashed after
	// an injected crash point, ErrClosed after Close.
	dead error
	// crash is the armed injection point; see crash.go.
	crash CrashPoint
	// recovery describes what the opening replay found.
	recovery RecoveryReport
}

// diskNode is one node's in-memory index over its segment files.
type diskNode struct {
	s      *Store
	id     int
	dir    string
	index  map[store.ShardKey]shardRef
	staged map[store.ShardKey]stagedRef
	segs   map[uint64]*segFile // open handles, keyed by segment number
	cur    uint64              // current append segment; 0 = none yet
	next   uint64              // next segment number to allocate
}

type stagedRef struct {
	stage string
	ref   shardRef
}

type segFile struct {
	af    *appendFile
	dirty bool // has appends not yet fsynced
}

type metaFile struct {
	Version int `json:"version"`
	Nodes   int `json:"nodes"`
}

// Open opens (creating if needed) a disk store for n nodes rooted at
// dir, replaying the WAL: committed state is rebuilt, orphaned stages —
// staged shards whose token never reached a commit record — are
// discarded, and a torn log or segment tail is truncated away. The
// replay's findings are available from Recovery().
func Open(dir string, n int, opts ...Option) (*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diskstore: need at least one node, got %d", n)
	}
	s := &Store{dir: dir, fsync: FsyncCommit, maxSeg: DefaultMaxSegmentBytes}
	for _, o := range opts {
		o(s)
	}
	switch s.fsync {
	case FsyncCommit, FsyncAlways, FsyncNever:
	default:
		return nil, fmt.Errorf("diskstore: unknown fsync policy %q", s.fsync)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := s.checkMeta(n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		nd := &diskNode{
			s:      s,
			id:     i,
			dir:    filepath.Join(dir, fmt.Sprintf("node-%02d", i)),
			index:  make(map[store.ShardKey]shardRef),
			staged: make(map[store.ShardKey]stagedRef),
			segs:   make(map[uint64]*segFile),
			next:   1,
		}
		if err := os.MkdirAll(nd.dir, 0o755); err != nil {
			s.closeFiles()
			return nil, err
		}
		if err := nd.scanSegments(); err != nil {
			s.closeFiles()
			return nil, err
		}
		s.nodes = append(s.nodes, nd)
	}
	wal, err := openAppend(filepath.Join(dir, "wal"))
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	s.wal = wal
	if err := s.replay(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// checkMeta creates or validates meta.json, refusing to open a directory
// laid out for a different node count.
func (s *Store) checkMeta(n int) error {
	path := filepath.Join(s.dir, "meta.json")
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		blob, _ = json.Marshal(metaFile{Version: 1, Nodes: n})
		return os.WriteFile(path, append(blob, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var m metaFile
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("diskstore: corrupt meta.json: %w", err)
	}
	if m.Nodes != n {
		return fmt.Errorf("diskstore: directory holds %d nodes, asked for %d", m.Nodes, n)
	}
	return nil
}

// scanSegments finds the node's existing segment files and positions
// next past them. The previous append segment is never reused: a fresh
// Open starts a fresh segment, so a torn tail from a crash is simply
// never appended after (its garbage bytes are unreferenced).
func (nd *diskNode) scanSegments() error {
	entries, err := os.ReadDir(nd.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		var num uint64
		if _, err := fmt.Sscanf(name, "%08d.seg", &num); err != nil {
			continue
		}
		if num >= nd.next {
			nd.next = num + 1
		}
	}
	return nil
}

func segName(num uint64) string { return fmt.Sprintf("%08d.seg", num) }

// seg returns the open handle for a segment, opening it on demand (a
// reopened store touches old segments lazily).
func (nd *diskNode) seg(num uint64) (*segFile, error) {
	if sf, ok := nd.segs[num]; ok {
		return sf, nil
	}
	af, err := openAppend(filepath.Join(nd.dir, segName(num)))
	if err != nil {
		return nil, err
	}
	sf := &segFile{af: af}
	nd.segs[num] = sf
	return sf, nil
}

// appendShard writes one shard body into the node's current segment
// (rolling to a new one at the size cap) and returns its reference.
// Caller holds s.mu.
func (nd *diskNode) appendShard(key store.ShardKey, data []byte) (shardRef, error) {
	rec := segRecord(key.Object, key.Index, key.Chunk, data)
	if nd.cur == 0 || func() bool {
		sf := nd.segs[nd.cur]
		return sf != nil && sf.af.size > 0 && sf.af.size+int64(len(rec)) > nd.s.maxSeg
	}() {
		nd.cur = nd.next
		nd.next++
	}
	sf, err := nd.seg(nd.cur)
	if err != nil {
		return shardRef{}, err
	}
	if nd.s.crash == CrashMidSegmentAppend {
		return shardRef{}, nd.s.dieMidAppend(sf, rec)
	}
	off, err := sf.af.append(rec)
	if err != nil {
		return shardRef{}, err
	}
	sf.dirty = true
	if nd.s.fsync == FsyncAlways {
		if err := sf.af.sync(); err != nil {
			return shardRef{}, err
		}
		sf.dirty = false
	}
	return shardRef{seg: nd.cur, off: off, klen: len(key.Object), dlen: len(data)}, nil
}

// commitPoint makes one durable decision: fsync the segments the record
// references, append the record to the WAL, fsync the WAL. Under
// FsyncNever both fsyncs are skipped. Caller holds s.mu and applies the
// in-memory flip only after commitPoint returns nil.
func (s *Store) commitPoint(rec []byte, segs []*segFile) error {
	if s.fsync != FsyncNever {
		for _, sf := range segs {
			if sf.dirty {
				if err := sf.af.sync(); err != nil {
					return err
				}
				sf.dirty = false
			}
		}
	}
	if s.crash == CrashBeforeWALSync {
		return s.dieBeforeWALSync(rec)
	}
	if _, err := s.wal.append(rec); err != nil {
		return err
	}
	if s.crash == CrashAfterWALSync {
		return s.dieAfterWALSync()
	}
	if s.fsync != FsyncNever {
		if err := s.wal.sync(); err != nil {
			return err
		}
	}
	return nil
}

// Nodes returns the node count.
func (s *Store) Nodes() int { return len(s.nodes) }

// Node returns one node's store view.
func (s *Store) Node(id int) store.NodeStore { return s.nodes[id] }

// Recovery reports what the opening WAL replay found.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// CommitStage promotes every shard staged under the token across all
// nodes: touched segments are fsynced, then one commit record carrying
// the epoch is appended and fsynced — the commit point — and only then
// does the in-memory index flip. An error means the stripe did not
// commit (after ErrCrashed, Open decides from what the log retained).
func (s *Store) CommitStage(stage string, epoch int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return 0, s.dead
	}
	type flip struct {
		nd  *diskNode
		key store.ShardKey
		ref shardRef
	}
	var flips []flip
	var dirty []*segFile
	for _, nd := range s.nodes {
		for key, st := range nd.staged {
			if st.stage != stage {
				continue
			}
			flips = append(flips, flip{nd, key, st.ref})
			if sf, ok := nd.segs[st.ref.seg]; ok && sf.dirty {
				dirty = append(dirty, sf)
			}
		}
	}
	if len(flips) == 0 {
		return 0, nil
	}
	var r recBuf
	r.u8(walCommit)
	r.u64(uint64(epoch))
	r.str16(stage)
	if err := s.commitPoint(r.frame(), dirty); err != nil {
		return 0, err
	}
	for _, f := range flips {
		f.ref.epoch = epoch
		f.nd.index[f.key] = f.ref
		delete(f.nd.staged, f.key)
	}
	return len(flips), nil
}

// AbortStage drops every shard staged under the token. The abort record
// is appended but never individually fsynced: a lost abort and a lost
// stage recover identically (the stage is discarded).
func (s *Store) AbortStage(stage string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return 0, s.dead
	}
	dropped := 0
	for _, nd := range s.nodes {
		for key, st := range nd.staged {
			if st.stage != stage {
				continue
			}
			delete(nd.staged, key)
			dropped++
		}
	}
	if dropped == 0 {
		return 0, nil
	}
	var r recBuf
	r.u8(walAbort)
	r.str16(stage)
	if _, err := s.wal.append(r.frame()); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// Close releases every file handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil // crashed or already closed; handles are gone
	}
	var err error
	if s.fsync != FsyncNever {
		err = s.wal.sync()
	}
	s.closeFiles()
	s.dead = ErrClosed
	return err
}

// closeFiles closes every open handle (crash, Close, failed Open).
func (s *Store) closeFiles() {
	if s.wal != nil {
		s.wal.close()
	}
	for _, nd := range s.nodes {
		for _, sf := range nd.segs {
			sf.af.close()
		}
		nd.segs = make(map[uint64]*segFile)
	}
}

// --- per-node store.NodeStore implementation -------------------------

// Put commits a shard directly: body append, segment fsync, put record,
// WAL fsync (per policy) — a single-shard commit point — then the index
// flip.
func (nd *diskNode) Put(sh store.Shard) error {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	ref, err := nd.appendShard(sh.Key, sh.Data)
	if err != nil {
		return err
	}
	var r recBuf
	r.u8(walPut)
	writeRefTo(&r, nd.id, ref, sh.Key.Index, sh.Key.Chunk, sh.Epoch)
	r.str16(sh.Key.Object)
	sf := nd.segs[ref.seg]
	if err := s.commitPoint(r.frame(), []*segFile{sf}); err != nil {
		return err
	}
	ref.epoch = sh.Epoch
	nd.index[sh.Key] = ref
	return nil
}

func (nd *diskNode) Get(key store.ShardKey) (store.Shard, bool, error) {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return store.Shard{}, false, s.dead
	}
	ref, ok := nd.index[key]
	if !ok {
		return store.Shard{}, false, nil
	}
	data, err := nd.readBody(ref)
	if err != nil {
		return store.Shard{}, false, err
	}
	return store.Shard{Key: key, Epoch: ref.epoch, Data: data}, true, nil
}

// readBody reads one shard's bytes. Caller holds s.mu.
func (nd *diskNode) readBody(ref shardRef) ([]byte, error) {
	sf, err := nd.seg(ref.seg)
	if err != nil {
		return nil, err
	}
	data := make([]byte, ref.dlen)
	if _, err := sf.af.f.ReadAt(data, ref.off+int64(segHeaderLen+ref.klen)); err != nil {
		return nil, fmt.Errorf("diskstore: node %d seg %d: %w", nd.id, ref.seg, err)
	}
	return data, nil
}

// Delete removes the committed shard and any staged entry for the key.
// The delete record is a commit point (a forgotten delete would
// resurrect the shard at recovery); the body bytes stay in their
// segment as unreferenced garbage — archival segments are write-once,
// space reclaim is a compaction concern, not a correctness one.
func (nd *diskNode) Delete(key store.ShardKey) error {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	_, committed := nd.index[key]
	_, parked := nd.staged[key]
	if !committed && !parked {
		return nil
	}
	var r recBuf
	r.u8(walDelete)
	r.u32(uint32(nd.id))
	r.u32(uint32(key.Index))
	r.u32(uint32(key.Chunk))
	r.str16(key.Object)
	if err := s.commitPoint(r.frame(), nil); err != nil {
		return err
	}
	delete(nd.index, key)
	delete(nd.staged, key)
	return nil
}

// Stage parks a shard under the token: body append plus a stage record,
// neither individually fsynced under the default policy — durability
// comes at the commit point, which fsyncs in the right order.
func (nd *diskNode) Stage(stage string, sh store.Shard) error {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	ref, err := nd.appendShard(sh.Key, sh.Data)
	if err != nil {
		return err
	}
	var r recBuf
	r.u8(walStage)
	writeRefTo(&r, nd.id, ref, sh.Key.Index, sh.Key.Chunk, sh.Epoch)
	r.str16(sh.Key.Object)
	r.str16(stage)
	if _, err := s.wal.append(r.frame()); err != nil {
		return err
	}
	if s.fsync == FsyncAlways {
		if err := s.wal.sync(); err != nil {
			return err
		}
	}
	ref.epoch = sh.Epoch
	nd.staged[sh.Key] = stagedRef{stage: stage, ref: ref}
	return nil
}

func (nd *diskNode) StagedOwner(key store.ShardKey) (string, bool) {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := nd.staged[key]
	return st.stage, ok
}

func (nd *diskNode) StagedCount() int {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(nd.staged)
}

func (nd *diskNode) ShardLen(key store.ShardKey) (int, bool) {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := nd.index[key]
	return ref.dlen, ok
}

// Corrupt flips one bit of the shard's bytes in place on disk —
// injected rot that deliberately violates the append-only discipline,
// because that is what rot does. No fsync: the flip rides whatever
// durability the segment already had.
func (nd *diskNode) Corrupt(key store.ShardKey, bit int) bool {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return false
	}
	ref, ok := nd.index[key]
	if !ok || ref.dlen == 0 || bit < 0 || bit >= ref.dlen*8 {
		return false
	}
	sf, err := nd.seg(ref.seg)
	if err != nil {
		return false
	}
	pos := ref.off + int64(segHeaderLen+ref.klen) + int64(bit/8)
	var b [1]byte
	if _, err := sf.af.f.ReadAt(b[:], pos); err != nil {
		return false
	}
	b[0] ^= 1 << (bit % 8)
	_, err = sf.af.f.WriteAt(b[:], pos)
	return err == nil
}

func (nd *diskNode) Snapshot() ([]store.Shard, error) {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil, s.dead
	}
	out := make([]store.Shard, 0, len(nd.index))
	for key, ref := range nd.index {
		data, err := nd.readBody(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, store.Shard{Key: key, Epoch: ref.epoch, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Chunk != b.Chunk {
			return a.Chunk < b.Chunk
		}
		return a.Index < b.Index
	})
	return out, nil
}

func (nd *diskNode) StoredBytes() int64 {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, ref := range nd.index {
		total += int64(ref.dlen)
	}
	for _, st := range nd.staged {
		total += int64(st.ref.dlen)
	}
	return total
}

func (nd *diskNode) ObjectBytes(object string) int64 {
	s := nd.s
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for key, ref := range nd.index {
		if key.Object == object {
			total += int64(ref.dlen)
		}
	}
	for key, st := range nd.staged {
		if key.Object == object {
			total += int64(st.ref.dlen)
		}
	}
	return total
}
