package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"securearchive/internal/store"
	"securearchive/internal/store/memstore"
)

func key(obj string, idx, chunk int) store.ShardKey {
	return store.ShardKey{Object: obj, Index: idx, Chunk: chunk}
}

func mustOpen(t *testing.T, dir string, n int, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, n, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 3)
	// Direct put on node 0.
	if err := s.Node(0).Put(store.Shard{Key: key("a", 0, 0), Epoch: 4, Data: []byte("alpha")}); err != nil {
		t.Fatal(err)
	}
	// Staged stripe across all nodes, committed at epoch 7.
	for i := 0; i < 3; i++ {
		if err := s.Node(i).Stage("tok", store.Shard{Key: key("b", i, 0), Epoch: 1, Data: []byte{byte(i), 1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.CommitStage("tok", 7); err != nil || n != 3 {
		t.Fatalf("CommitStage = %d, %v", n, err)
	}
	check := func(s *Store, when string) {
		t.Helper()
		sh, ok, err := s.Node(0).Get(key("a", 0, 0))
		if err != nil || !ok || !bytes.Equal(sh.Data, []byte("alpha")) || sh.Epoch != 4 {
			t.Fatalf("%s: get a = %+v ok=%v err=%v", when, sh, ok, err)
		}
		for i := 0; i < 3; i++ {
			sh, ok, err := s.Node(i).Get(key("b", i, 0))
			if err != nil || !ok || sh.Epoch != 7 {
				t.Fatalf("%s: get b[%d] = %+v ok=%v err=%v", when, i, sh, ok, err)
			}
			if !bytes.Equal(sh.Data, []byte{byte(i), 1, 2}) {
				t.Fatalf("%s: b[%d] data = %v", when, i, sh.Data)
			}
		}
		if got := s.Node(0).StoredBytes(); got != 5+3 {
			t.Fatalf("%s: node0 StoredBytes = %d, want 8", when, got)
		}
	}
	check(s, "before close")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 3)
	defer s2.Close()
	check(s2, "after reopen")
	if rep := s2.Recovery(); rep.OrphanedStages != 0 || rep.WALBytesDropped != 0 || rep.InvalidRefs != 0 {
		t.Fatalf("clean reopen recovery = %+v", rep)
	}
}

func TestOrphanedStageDiscardedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 2)
	for i := 0; i < 2; i++ {
		if err := s.Node(i).Stage("leak", store.Shard{Key: key("x", i, 0), Data: []byte("zzz")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Node(0).StagedCount(); got != 1 {
		t.Fatalf("StagedCount = %d", got)
	}
	s.Close() // syncs the WAL: the stage records ARE durable, just never committed
	s2 := mustOpen(t, dir, 2)
	defer s2.Close()
	if rep := s2.Recovery(); rep.OrphanedStages != 2 {
		t.Fatalf("OrphanedStages = %d, want 2 (recovery = %+v)", rep.OrphanedStages, rep)
	}
	for i := 0; i < 2; i++ {
		if got := s2.Node(i).StagedCount(); got != 0 {
			t.Fatalf("node %d StagedCount after reopen = %d", i, got)
		}
		if _, ok, _ := s2.Node(i).Get(key("x", i, 0)); ok {
			t.Fatalf("orphaned stage visible on node %d", i)
		}
	}
	if got := s2.Node(0).StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes after orphan discard = %d", got)
	}
}

func TestAbortAndDeleteClearStaged(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1)
	defer s.Close()
	nd := s.Node(0)
	if err := nd.Stage("t1", store.Shard{Key: key("a", 0, 0), Data: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if n, err := s.AbortStage("t1"); err != nil || n != 1 {
		t.Fatalf("AbortStage = %d, %v", n, err)
	}
	if nd.StagedCount() != 0 {
		t.Fatal("abort left a staged entry")
	}
	// Delete must clear both the committed shard and a parked stage.
	if err := nd.Put(store.Shard{Key: key("b", 0, 0), Data: []byte("22")}); err != nil {
		t.Fatal(err)
	}
	if err := nd.Stage("t2", store.Shard{Key: key("b", 0, 0), Data: []byte("33")}); err != nil {
		t.Fatal(err)
	}
	if err := nd.Delete(key("b", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if nd.StagedCount() != 0 || nd.StoredBytes() != 0 {
		t.Fatalf("delete left staged=%d bytes=%d", nd.StagedCount(), nd.StoredBytes())
	}
	if _, ok, _ := nd.Get(key("b", 0, 0)); ok {
		t.Fatal("deleted shard still visible")
	}
	// The delete must hold across reopen too.
	s.Close()
	s2 := mustOpen(t, dir, 1)
	defer s2.Close()
	if _, ok, _ := s2.Node(0).Get(key("b", 0, 0)); ok {
		t.Fatal("deleted shard resurrected by replay")
	}
	if got := s2.Node(0).StoredBytes(); got != 0 {
		t.Fatalf("StoredBytes after reopen = %d", got)
	}
}

// stageStripe parks one shard per node under the token.
func stageStripe(t *testing.T, s *Store, obj, tok string, data []byte) {
	t.Helper()
	for i := 0; i < s.Nodes(); i++ {
		if err := s.Node(i).Stage(tok, store.Shard{Key: key(obj, i, 0), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashBeforeWALSyncRollsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 3)
	stageStripe(t, s, "base", "t0", []byte("baseline"))
	if _, err := s.CommitStage("t0", 1); err != nil {
		t.Fatal(err)
	}
	stageStripe(t, s, "victim", "t1", []byte("doomed"))
	s.SetCrashPoint(CrashBeforeWALSync)
	if _, err := s.CommitStage("t1", 2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("CommitStage = %v, want ErrCrashed", err)
	}
	if err := s.Node(0).Put(store.Shard{Key: key("z", 0, 0), Data: []byte("x")}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op = %v, want ErrCrashed", err)
	}
	s2 := mustOpen(t, dir, 3)
	defer s2.Close()
	rep := s2.Recovery()
	if rep.WALBytesDropped == 0 {
		t.Fatalf("expected a torn WAL tail, recovery = %+v", rep)
	}
	if rep.OrphanedStages != 3 {
		t.Fatalf("OrphanedStages = %d, want 3", rep.OrphanedStages)
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := s2.Node(i).Get(key("victim", i, 0)); ok {
			t.Fatalf("uncommitted stripe visible on node %d", i)
		}
		sh, ok, err := s2.Node(i).Get(key("base", i, 0))
		if err != nil || !ok || sh.Epoch != 1 || !bytes.Equal(sh.Data, []byte("baseline")) {
			t.Fatalf("baseline stripe damaged on node %d: %+v ok=%v err=%v", i, sh, ok, err)
		}
	}
}

func TestCrashAfterWALSyncCommits(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 3)
	stageStripe(t, s, "v", "t1", []byte("survives"))
	s.SetCrashPoint(CrashAfterWALSync)
	if _, err := s.CommitStage("t1", 5); !errors.Is(err, ErrCrashed) {
		t.Fatalf("CommitStage = %v, want ErrCrashed", err)
	}
	s2 := mustOpen(t, dir, 3)
	defer s2.Close()
	if rep := s2.Recovery(); rep.OrphanedStages != 0 || rep.Shards != 3 {
		t.Fatalf("recovery = %+v, want 3 committed shards, no orphans", rep)
	}
	for i := 0; i < 3; i++ {
		sh, ok, err := s2.Node(i).Get(key("v", i, 0))
		if err != nil || !ok || sh.Epoch != 5 || !bytes.Equal(sh.Data, []byte("survives")) {
			t.Fatalf("committed stripe lost on node %d: %+v ok=%v err=%v", i, sh, ok, err)
		}
	}
}

func TestCrashMidSegmentAppend(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 2)
	if err := s.Node(0).Put(store.Shard{Key: key("keep", 0, 0), Epoch: 1, Data: []byte("kept-data")}); err != nil {
		t.Fatal(err)
	}
	s.SetCrashPoint(CrashMidSegmentAppend)
	err := s.Node(0).Put(store.Shard{Key: key("torn", 0, 0), Epoch: 1, Data: bytes.Repeat([]byte("T"), 4096)})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("Put = %v, want ErrCrashed", err)
	}
	s2 := mustOpen(t, dir, 2)
	defer s2.Close()
	if _, ok, _ := s2.Node(0).Get(key("torn", 0, 0)); ok {
		t.Fatal("half-written shard visible after recovery")
	}
	sh, ok, err := s2.Node(0).Get(key("keep", 0, 0))
	if err != nil || !ok || !bytes.Equal(sh.Data, []byte("kept-data")) {
		t.Fatalf("earlier shard damaged: %+v ok=%v err=%v", sh, ok, err)
	}
	// A fresh write after recovery must land cleanly despite the garbage
	// tail left in the old segment (new appends go to a fresh segment).
	if err := s2.Node(0).Put(store.Shard{Key: key("after", 0, 0), Epoch: 2, Data: []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	if sh, ok, _ := s2.Node(0).Get(key("after", 0, 0)); !ok || !bytes.Equal(sh.Data, []byte("fresh")) {
		t.Fatalf("post-recovery write broken: %+v ok=%v", sh, ok)
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1, WithMaxSegmentBytes(256))
	payload := bytes.Repeat([]byte("R"), 100)
	for i := 0; i < 8; i++ {
		if err := s.Node(0).Put(store.Shard{Key: key("o", 0, i), Epoch: 1, Data: payload}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "node-00", "*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected rolled segments, found %d", len(segs))
	}
	s2 := mustOpen(t, dir, 1, WithMaxSegmentBytes(256))
	defer s2.Close()
	for i := 0; i < 8; i++ {
		sh, ok, err := s2.Node(0).Get(key("o", 0, i))
		if err != nil || !ok || !bytes.Equal(sh.Data, payload) {
			t.Fatalf("chunk %d lost across segments: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, mode := range []string{FsyncCommit, FsyncAlways, FsyncNever} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, 2, WithFsync(mode))
			stageStripe2 := func(obj, tok string) {
				for i := 0; i < 2; i++ {
					if err := s.Node(i).Stage(tok, store.Shard{Key: key(obj, i, 0), Data: []byte(obj)}); err != nil {
						t.Fatal(err)
					}
				}
			}
			stageStripe2("a", "t")
			if _, err := s.CommitStage("t", 1); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s2 := mustOpen(t, dir, 2, WithFsync(mode))
			defer s2.Close()
			for i := 0; i < 2; i++ {
				if _, ok, err := s2.Node(i).Get(key("a", i, 0)); !ok || err != nil {
					t.Fatalf("mode %s: committed shard missing after clean close", mode)
				}
			}
		})
	}
	if _, err := Open(t.TempDir(), 1, WithFsync("sometimes")); err == nil {
		t.Fatal("bogus fsync mode accepted")
	}
}

func TestCorruptPersistsAtRest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1)
	data := []byte("pristine-bytes")
	if err := s.Node(0).Put(store.Shard{Key: key("r", 0, 0), Epoch: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	if !s.Node(0).Corrupt(key("r", 0, 0), 3) {
		t.Fatal("Corrupt refused an existing shard")
	}
	want := append([]byte(nil), data...)
	want[0] ^= 1 << 3
	sh, _, _ := s.Node(0).Get(key("r", 0, 0))
	if !bytes.Equal(sh.Data, want) {
		t.Fatalf("rot not visible: got %q", sh.Data)
	}
	s.Close()
	// Rot is damage to the bytes AT REST: it must survive reopen.
	s2 := mustOpen(t, dir, 1)
	defer s2.Close()
	sh, _, _ = s2.Node(0).Get(key("r", 0, 0))
	if !bytes.Equal(sh.Data, want) {
		t.Fatalf("rot healed by reopen: got %q", sh.Data)
	}
}

func TestMetaMismatchRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, 3).Close()
	if _, err := Open(dir, 5); err == nil {
		t.Fatal("open with wrong node count accepted")
	}
}

// TestDifferentialMemVsDisk drives the identical mixed workload through
// the memory and disk backends and requires byte-for-byte agreement on
// every node's committed snapshot — memstore is the behavioural
// reference, diskstore must be indistinguishable above the interface.
func TestDifferentialMemVsDisk(t *testing.T) {
	const nodes = 4
	mem := store.Store(memstore.New(nodes))
	disk := store.Store(mustOpen(t, t.TempDir(), nodes))
	defer disk.Close()

	run := func(s store.Store) {
		// Direct puts, two objects.
		for i := 0; i < nodes; i++ {
			payload := bytes.Repeat([]byte{byte('A' + i)}, 64+i)
			if err := s.Node(i).Put(store.Shard{Key: key("direct", i, 0), Epoch: 1, Data: payload}); err != nil {
				t.Fatal(err)
			}
		}
		// A staged multi-chunk object, committed.
		for c := 0; c < 3; c++ {
			for i := 0; i < nodes; i++ {
				data := []byte(fmt.Sprintf("chunk%d-node%d", c, i))
				if err := s.Node(i).Stage("w1", store.Shard{Key: key("big", i, c), Data: data}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := s.CommitStage("w1", 2); err != nil {
			t.Fatal(err)
		}
		// An aborted stage.
		for i := 0; i < nodes; i++ {
			if err := s.Node(i).Stage("w2", store.Shard{Key: key("never", i, 0), Data: []byte("aborted")}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.AbortStage("w2"); err != nil {
			t.Fatal(err)
		}
		// Rewrite one stripe at a later epoch (renewal shape).
		for i := 0; i < nodes; i++ {
			if err := s.Node(i).Stage("w3", store.Shard{Key: key("direct", i, 0), Data: []byte("renewed")}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.CommitStage("w3", 3); err != nil {
			t.Fatal(err)
		}
		// Delete one object's shards on half the nodes.
		for i := 0; i < nodes/2; i++ {
			if err := s.Node(i).Delete(key("big", i, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(mem)
	run(disk)

	for i := 0; i < nodes; i++ {
		ms, err := mem.Node(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		ds, err := disk.Node(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		sortShards(ms)
		sortShards(ds)
		if len(ms) != len(ds) {
			t.Fatalf("node %d: mem has %d shards, disk has %d", i, len(ms), len(ds))
		}
		for j := range ms {
			if ms[j].Key != ds[j].Key || ms[j].Epoch != ds[j].Epoch || !bytes.Equal(ms[j].Data, ds[j].Data) {
				t.Fatalf("node %d shard %d diverges:\n mem  %+v\n disk %+v", i, j, ms[j], ds[j])
			}
		}
		if mb, db := mem.Node(i).StoredBytes(), disk.Node(i).StoredBytes(); mb != db {
			t.Fatalf("node %d StoredBytes: mem %d, disk %d", i, mb, db)
		}
	}
}

func sortShards(s []store.Shard) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			a, b := s[j-1].Key, s[j].Key
			if a.Object < b.Object || (a.Object == b.Object && (a.Chunk < b.Chunk || (a.Chunk == b.Chunk && a.Index <= b.Index))) {
				break
			}
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
