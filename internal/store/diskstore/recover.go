package diskstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"

	"securearchive/internal/store"
)

// RecoveryReport describes what Open's WAL replay found and repaired.
type RecoveryReport struct {
	// WALBytesDropped counts log bytes truncated from a torn or corrupt
	// tail (records that never reached their fsync).
	WALBytesDropped int64
	// OrphanedStages counts staged shards discarded because their stage
	// token never reached a commit record.
	OrphanedStages int
	// InvalidRefs counts WAL records dropped because their segment
	// reference failed validation (bytes torn or missing — possible only
	// under the "never" fsync policy or outside crash simulation).
	InvalidRefs int
	// Shards is the number of committed shards indexed after replay.
	Shards int
}

// replay rebuilds the in-memory indexes from the WAL. Rules, in order:
//
//  1. Frames are consumed until the first torn or corrupt one; the log
//     is truncated there. A record is durable only if its whole frame
//     is — the protocol fsyncs the log at every commit point, so
//     everything after a torn frame predates a commit and is droppable.
//  2. Each stage/put record's segment reference is cross-checked
//     against the segment's own header (checkSegHeader); a mismatch
//     drops the record, never the store.
//  3. Commit records promote their token's staged entries with the
//     record's epoch; abort and delete records drop state.
//  4. Stages still parked when the log ends are orphans — their commit
//     never became durable — and are discarded.
//
// Called from Open with no concurrent access.
func (s *Store) replay() error {
	blob, err := os.ReadFile(filepath.Join(s.dir, "wal"))
	if err != nil {
		return err
	}
	off := int64(0)
	for {
		rest := blob[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < 8 {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen > walMaxPayload || int(plen) > len(rest)-8 {
			break // absurd length or torn payload
		}
		payload := rest[8 : 8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt frame
		}
		s.applyRecord(payload)
		off += 8 + int64(plen)
	}
	if dropped := int64(len(blob)) - off; dropped > 0 {
		s.recovery.WALBytesDropped = dropped
		if err := s.wal.truncate(off); err != nil {
			return err
		}
	}
	for _, nd := range s.nodes {
		for key := range nd.staged {
			delete(nd.staged, key)
			s.recovery.OrphanedStages++
		}
		s.recovery.Shards += len(nd.index)
	}
	return nil
}

// applyRecord replays one decoded frame. Malformed or unreplayable
// records are dropped individually (counted as InvalidRefs when a
// segment reference was at fault).
func (s *Store) applyRecord(payload []byte) {
	r := newRecReader(payload)
	switch r.u8() {
	case walStage:
		rec := readShardRecord(r, true)
		if !r.ok || rec.node < 0 || rec.node >= len(s.nodes) {
			s.recovery.InvalidRefs++
			return
		}
		nd := s.nodes[rec.node]
		if !nd.validRef(rec) {
			s.recovery.InvalidRefs++
			return
		}
		key := store.ShardKey{Object: rec.object, Index: rec.index, Chunk: rec.chunk}
		rec.ref.epoch = rec.epoch
		nd.staged[key] = stagedRef{stage: rec.stage, ref: rec.ref}
	case walPut:
		rec := readShardRecord(r, false)
		if !r.ok || rec.node < 0 || rec.node >= len(s.nodes) {
			s.recovery.InvalidRefs++
			return
		}
		nd := s.nodes[rec.node]
		if !nd.validRef(rec) {
			s.recovery.InvalidRefs++
			return
		}
		key := store.ShardKey{Object: rec.object, Index: rec.index, Chunk: rec.chunk}
		rec.ref.epoch = rec.epoch
		nd.index[key] = rec.ref
	case walCommit:
		epoch := int(int64(r.u64()))
		stage := r.str16()
		if !r.ok {
			return
		}
		for _, nd := range s.nodes {
			for key, st := range nd.staged {
				if st.stage != stage {
					continue
				}
				st.ref.epoch = epoch
				nd.index[key] = st.ref
				delete(nd.staged, key)
			}
		}
	case walAbort:
		stage := r.str16()
		if !r.ok {
			return
		}
		for _, nd := range s.nodes {
			for key, st := range nd.staged {
				if st.stage == stage {
					delete(nd.staged, key)
				}
			}
		}
	case walDelete:
		node := int(r.u32())
		index := int(r.u32())
		chunk := int(r.u32())
		object := r.str16()
		if !r.ok || node < 0 || node >= len(s.nodes) {
			return
		}
		key := store.ShardKey{Object: object, Index: index, Chunk: chunk}
		delete(s.nodes[node].index, key)
		delete(s.nodes[node].staged, key)
	}
}

// validRef cross-checks a replayed reference against the segment bytes
// it claims to describe.
func (nd *diskNode) validRef(rec walShardRecord) bool {
	sf, err := nd.seg(rec.ref.seg)
	if err != nil {
		return false
	}
	return checkSegHeader(sf.af.f, sf.af.size, rec.ref, rec.object, rec.index, rec.chunk) == nil
}
