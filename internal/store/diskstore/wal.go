package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The write-ahead log is the store's source of truth: segment files hold
// shard bodies, but a shard exists only if the WAL says so. Records are
// metadata-only (a few dozen bytes — the bodies already live in
// segments), framed as
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// and replayed in order at Open. A torn or corrupt frame ends the log:
// everything from it on is truncated — those records never reached a
// commit point, so dropping them is exactly the stage-discarding
// semantics the protocol promises.
//
// Payloads begin with a one-byte type:
//
//	walStage  — node staged a shard under a token (body already appended
//	            to a segment; the record carries the segment reference)
//	walPut    — node committed a shard directly (un-staged write)
//	walCommit — every shard staged under the token is promoted, stamped
//	            with the record's epoch. The fsync of this record is THE
//	            commit point for multi-shard writes.
//	walAbort  — every shard staged under the token is dropped
//	walDelete — node dropped the committed shard and any staged entry
//	            for the key

const (
	walStage  = 1
	walPut    = 2
	walCommit = 3
	walAbort  = 4
	walDelete = 5

	// walMaxPayload bounds a frame during replay: anything larger is
	// treated as corruption (real payloads are tiny — an object id, a
	// stage token, fixed-width refs).
	walMaxPayload = 1 << 16
)

// appendFile is an append-only file that tracks which prefix has been
// fsynced — the watermark crash injection truncates back to, simulating
// the loss of everything still sitting in the page cache at power cut.
type appendFile struct {
	f      *os.File
	size   int64 // logical end of file (all appended bytes)
	synced int64 // bytes known durable (last fsync)
}

// openAppend opens (creating if needed) path for appending and reading.
// The existing contents are assumed durable: size and synced start at
// the current length.
func openAppend(path string) (*appendFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &appendFile{f: f, size: fi.Size(), synced: fi.Size()}, nil
}

// append writes b at the logical end and returns its offset.
func (a *appendFile) append(b []byte) (int64, error) {
	off := a.size
	if _, err := a.f.WriteAt(b, off); err != nil {
		return 0, err
	}
	a.size += int64(len(b))
	return off, nil
}

// sync fsyncs and advances the durable watermark.
func (a *appendFile) sync() error {
	if a.synced == a.size {
		return nil
	}
	if err := a.f.Sync(); err != nil {
		return err
	}
	a.synced = a.size
	return nil
}

// truncate cuts the file to n bytes (crash simulation and torn-tail
// recovery).
func (a *appendFile) truncate(n int64) error {
	if err := a.f.Truncate(n); err != nil {
		return err
	}
	a.size = n
	if a.synced > n {
		a.synced = n
	}
	return nil
}

func (a *appendFile) close() error { return a.f.Close() }

// recBuf builds a record payload.
type recBuf struct{ b []byte }

func (r *recBuf) u8(v uint8)   { r.b = append(r.b, v) }
func (r *recBuf) u32(v uint32) { r.b = binary.LittleEndian.AppendUint32(r.b, v) }
func (r *recBuf) u64(v uint64) { r.b = binary.LittleEndian.AppendUint64(r.b, v) }
func (r *recBuf) str16(s string) {
	r.b = binary.LittleEndian.AppendUint16(r.b, uint16(len(s)))
	r.b = append(r.b, s...)
}

// frame wraps the payload with the length+CRC header.
func (r *recBuf) frame() []byte {
	out := make([]byte, 8, 8+len(r.b))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(r.b)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(r.b))
	return append(out, r.b...)
}

// recReader decodes a record payload; any overrun marks it bad and
// zero-values every subsequent read, so callers check ok once at the end.
type recReader struct {
	b  []byte
	ok bool
}

func newRecReader(b []byte) *recReader { return &recReader{b: b, ok: true} }

func (r *recReader) take(n int) []byte {
	if !r.ok || len(r.b) < n {
		r.ok = false
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *recReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *recReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *recReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *recReader) str16() string {
	n := r.take(2)
	if n == nil {
		return ""
	}
	return string(r.take(int(binary.LittleEndian.Uint16(n))))
}

// shardRef locates one shard's body inside a node's segment files.
type shardRef struct {
	seg   uint64 // segment number
	off   int64  // offset of the record header within the segment
	klen  int    // object-id length (data begins at off+segHeaderLen+klen)
	dlen  int    // body length
	epoch int    // epoch stamped at commit (or put) time
}

// writeRefTo appends the fixed-width half of a stage/put record.
func writeRefTo(r *recBuf, node int, ref shardRef, index, chunk, epoch int) {
	r.u32(uint32(node))
	r.u64(ref.seg)
	r.u64(uint64(ref.off))
	r.u32(uint32(ref.dlen))
	r.u32(uint32(index))
	r.u32(uint32(chunk))
	r.u64(uint64(epoch))
}

// walShardRecord is the decoded form of a stage/put record.
type walShardRecord struct {
	node         int
	ref          shardRef
	index, chunk int
	epoch        int
	object       string
	stage        string // empty for walPut
}

func readShardRecord(r *recReader, staged bool) walShardRecord {
	var rec walShardRecord
	rec.node = int(r.u32())
	rec.ref.seg = r.u64()
	rec.ref.off = int64(r.u64())
	rec.ref.dlen = int(r.u32())
	rec.index = int(r.u32())
	rec.chunk = int(r.u32())
	rec.epoch = int(int64(r.u64()))
	rec.object = r.str16()
	rec.ref.klen = len(rec.object)
	if staged {
		rec.stage = r.str16()
	}
	return rec
}

// Segment records: each shard body is appended as
//
//	u32 magic "SEGR" | u16 klen | u16 zero | u32 index | u32 chunk |
//	u32 dlen | object (klen bytes) | data (dlen bytes)
//
// The header is redundant with the WAL reference — recovery uses it to
// reject references into torn or foreign bytes, and it makes segments
// self-describing for offline salvage tooling.

const (
	segMagic     = 0x53454752 // "SEGR"
	segHeaderLen = 20
)

// segRecord builds one segment record.
func segRecord(object string, index, chunk int, data []byte) []byte {
	out := make([]byte, segHeaderLen, segHeaderLen+len(object)+len(data))
	binary.LittleEndian.PutUint32(out[0:4], segMagic)
	binary.LittleEndian.PutUint16(out[4:6], uint16(len(object)))
	binary.LittleEndian.PutUint32(out[8:12], uint32(index))
	binary.LittleEndian.PutUint32(out[12:16], uint32(chunk))
	binary.LittleEndian.PutUint32(out[16:20], uint32(len(data)))
	out = append(out, object...)
	return append(out, data...)
}

// checkSegHeader verifies that the bytes at ref in file f describe the
// given key — the recovery cross-check that a WAL reference points at a
// fully written record and not into a torn tail.
func checkSegHeader(f *os.File, fileSize int64, ref shardRef, object string, index, chunk int) error {
	end := ref.off + int64(segHeaderLen+ref.klen+ref.dlen)
	if ref.off < 0 || end > fileSize {
		return fmt.Errorf("diskstore: ref beyond segment end (%d > %d)", end, fileSize)
	}
	hdr := make([]byte, segHeaderLen+ref.klen)
	if _, err := f.ReadAt(hdr, ref.off); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic ||
		int(binary.LittleEndian.Uint16(hdr[4:6])) != ref.klen ||
		int(binary.LittleEndian.Uint32(hdr[8:12])) != index ||
		int(binary.LittleEndian.Uint32(hdr[12:16])) != chunk ||
		int(binary.LittleEndian.Uint32(hdr[16:20])) != ref.dlen ||
		string(hdr[segHeaderLen:]) != object {
		return fmt.Errorf("diskstore: segment header mismatch for %s[%d] chunk %d", object, index, chunk)
	}
	return nil
}
