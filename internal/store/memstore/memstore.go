// Package memstore is the in-memory store.Store: per-node maps guarded
// by per-node mutexes — exactly the storage the cluster simulation
// started with, extracted behind the NodeStore interface. It is the
// fast path for tests, benchmarks and simulations where at-rest
// durability is irrelevant, and the behavioural reference the disk
// backend is differentially tested against.
package memstore

import (
	"sync"

	"securearchive/internal/store"
)

// Store implements store.Store over per-node maps.
type Store struct {
	nodes []*nodeStore
}

// New creates a memory-backed store for n nodes.
func New(n int) *Store {
	s := &Store{nodes: make([]*nodeStore, n)}
	for i := range s.nodes {
		s.nodes[i] = &nodeStore{
			shards: make(map[store.ShardKey]store.Shard),
			staged: make(map[store.ShardKey]stagedShard),
		}
	}
	return s
}

// Nodes returns the node count.
func (s *Store) Nodes() int { return len(s.nodes) }

// Node returns one node's store.
func (s *Store) Node(id int) store.NodeStore { return s.nodes[id] }

// CommitStage promotes every shard staged under the token across all
// nodes, stamping each with the epoch. The per-node key swap cannot fail
// partway: each node's flip happens under its lock, and no code path
// observes a node's staging area except through the same lock.
func (s *Store) CommitStage(stage string, epoch int) (int, error) {
	committed := 0
	for _, n := range s.nodes {
		n.mu.Lock()
		for key, st := range n.staged {
			if st.stage != stage {
				continue
			}
			st.sh.Epoch = epoch
			n.shards[key] = st.sh
			delete(n.staged, key)
			committed++
		}
		n.mu.Unlock()
	}
	return committed, nil
}

// AbortStage drops every shard staged under the token across all nodes.
func (s *Store) AbortStage(stage string) (int, error) {
	dropped := 0
	for _, n := range s.nodes {
		n.mu.Lock()
		for key, st := range n.staged {
			if st.stage != stage {
				continue
			}
			delete(n.staged, key)
			dropped++
		}
		n.mu.Unlock()
	}
	return dropped, nil
}

// Close is a no-op for the memory backend.
func (s *Store) Close() error { return nil }

// stagedShard is one shard parked in a node's staging area.
type stagedShard struct {
	stage string
	sh    store.Shard
}

// nodeStore is one node's maps.
type nodeStore struct {
	mu     sync.Mutex
	shards map[store.ShardKey]store.Shard
	staged map[store.ShardKey]stagedShard
}

func (n *nodeStore) Put(sh store.Shard) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh.Data = append([]byte(nil), sh.Data...)
	n.shards[sh.Key] = sh
	return nil
}

func (n *nodeStore) Get(key store.ShardKey) (store.Shard, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh, ok := n.shards[key]
	if !ok {
		return store.Shard{}, false, nil
	}
	out := store.Shard{Key: sh.Key, Epoch: sh.Epoch, Data: append([]byte(nil), sh.Data...)}
	return out, true, nil
}

func (n *nodeStore) Delete(key store.ShardKey) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.shards, key)
	delete(n.staged, key)
	return nil
}

func (n *nodeStore) Stage(stage string, sh store.Shard) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh.Data = append([]byte(nil), sh.Data...)
	n.staged[sh.Key] = stagedShard{stage: stage, sh: sh}
	return nil
}

func (n *nodeStore) StagedOwner(key store.ShardKey) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.staged[key]
	return st.stage, ok
}

func (n *nodeStore) StagedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.staged)
}

func (n *nodeStore) ShardLen(key store.ShardKey) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh, ok := n.shards[key]
	return len(sh.Data), ok
}

func (n *nodeStore) Corrupt(key store.ShardKey, bit int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh, ok := n.shards[key]
	if !ok || len(sh.Data) == 0 || bit < 0 || bit >= len(sh.Data)*8 {
		return false
	}
	sh.Data[bit/8] ^= 1 << (bit % 8)
	n.shards[key] = sh
	return true
}

func (n *nodeStore) Snapshot() ([]store.Shard, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]store.Shard, 0, len(n.shards))
	for _, sh := range n.shards {
		out = append(out, store.Shard{Key: sh.Key, Epoch: sh.Epoch, Data: append([]byte(nil), sh.Data...)})
	}
	return out, nil
}

func (n *nodeStore) StoredBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total int64
	for _, sh := range n.shards {
		total += int64(len(sh.Data))
	}
	for _, st := range n.staged {
		total += int64(len(st.sh.Data))
	}
	return total
}

func (n *nodeStore) ObjectBytes(object string) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total int64
	for k, sh := range n.shards {
		if k.Object == object {
			total += int64(len(sh.Data))
		}
	}
	for k, st := range n.staged {
		if k.Object == object {
			total += int64(len(st.sh.Data))
		}
	}
	return total
}
