// Package store defines the at-rest storage contract behind the
// cluster's nodes. The cluster simulates *placement* — which
// administratively independent provider holds which shard in which epoch
// — while a NodeStore holds the bytes themselves. Splitting the two lets
// the same cluster (and every fault plan, hammer and benchmark above it)
// run against interchangeable backends: the in-memory map store the
// simulation started with (memstore) or durable append-only segments
// with a write-ahead log whose stage/commit protocol survives kill -9
// (diskstore).
//
// The package holds only the shared types, the two interfaces, and the
// backend-selection Config; the implementations live in the memstore and
// diskstore subpackages so that importing the contract never drags in
// disk machinery.
package store

// ShardKey addresses one shard of one object version. Objects written
// monolithically occupy chunk 0; the vault's pipelined writer splits
// large objects into fixed-size chunks, each encoded as its own stripe,
// so a shard is addressed by (object, chunk, index). The zero Chunk
// keeps every pre-chunking key (and persisted test fixture) valid.
type ShardKey struct {
	Object string // object identifier
	Index  int    // shard index within the chunk's encoding
	Chunk  int    // chunk ordinal within the object; 0 for unchunked
}

// Shard is the unit of storage: opaque bytes plus placement metadata.
type Shard struct {
	Key   ShardKey
	Epoch int // the epoch this shard version was written
	Data  []byte
}

// NodeStore is one node's shard storage. Implementations are safe for
// concurrent use and own their bytes: Put/Stage copy data in, Get and
// Snapshot return data the caller may keep (mutating it never reaches
// the store — except through Corrupt, which is how injected bit rot
// damages the bytes *at rest*).
//
// The staging area is the node-local half of the cluster's
// stage-then-commit protocol: Stage parks a shard under a stage token,
// invisible to Get, until the Store-level CommitStage promotes every
// shard of the token at once (or AbortStage drops them). Delete removes
// both the committed shard and any staged entry for the key — a deleted
// object must not leave a parked stage behind to leak bytes or block a
// later re-Put of the same key.
type NodeStore interface {
	// Put commits a shard directly, replacing any previous version of
	// the key. The shard's Epoch is stored as given.
	Put(sh Shard) error
	// Get returns the committed shard for the key. The second result is
	// false when the key is absent; the error reports storage failures
	// (I/O, post-crash use), never absence.
	Get(key ShardKey) (Shard, bool, error)
	// Delete removes the committed shard and any staged entry for the
	// key. Deleting an absent key is not an error.
	Delete(key ShardKey) error
	// Stage parks a shard under the stage token, invisible to Get.
	// Re-staging the same key under the same token overwrites.
	// Staging over a key held by a different token is the caller's
	// bug — implementations may overwrite; the cluster checks
	// StagedOwner first and refuses with its own error.
	Stage(stage string, sh Shard) error
	// StagedOwner returns the token holding a staged entry for the key,
	// if any.
	StagedOwner(key ShardKey) (string, bool)
	// StagedCount returns the number of shards parked in the staging
	// area.
	StagedCount() int
	// ShardLen returns the committed shard's byte length without copying
	// its data (fault injection sizes its bit flip from this).
	ShardLen(key ShardKey) (int, bool)
	// Corrupt flips one bit of the committed shard's bytes at rest —
	// persistent rot that a later read or scrub still sees. Returns
	// false when the key is absent or the shard is empty.
	Corrupt(key ShardKey, bit int) bool
	// Snapshot returns copies of all committed shards, in no particular
	// order.
	Snapshot() ([]Shard, error)
	// StoredBytes returns the bytes physically occupying the node:
	// committed shards plus any still parked in the staging area.
	StoredBytes() int64
	// ObjectBytes returns the bytes at rest attributable to one object,
	// committed and staged.
	ObjectBytes(object string) int64
}

// Store is a cluster-wide backend: a fixed set of per-node stores plus
// the stage-commit operations that must be atomic *across* nodes. A
// stage token typically covers one shard per node (a stripe, or every
// chunk stripe of one object); CommitStage promotes all of them as one
// decision — for the disk backend, one WAL record whose fsync is the
// commit point, so a crash at any instant yields either the whole
// stripe or none of it after recovery.
type Store interface {
	// Nodes returns the number of per-node stores.
	Nodes() int
	// Node returns the store for one node; id is in [0, Nodes()).
	Node(id int) NodeStore
	// CommitStage atomically promotes every shard staged under the
	// token, across all nodes, stamping each with the given epoch.
	// Returns the number of shards committed. A non-nil error means the
	// commit did NOT happen (nothing was promoted) — except after a
	// crash mid-commit, where recovery decides from the WAL.
	CommitStage(stage string, epoch int) (int, error)
	// AbortStage drops every shard staged under the token, across all
	// nodes. Returns the number of shards dropped.
	AbortStage(stage string) (int, error)
	// Close releases the backend's resources (file handles for disk
	// backends; a no-op for memory). The store must not be used after.
	Close() error
}

// Backend names for Config.
const (
	BackendMem  = "mem"
	BackendDisk = "disk"
)

// Config selects and parameterises a backend — the data half of the
// config/factory split. It is pure data (flag-friendly); the factory
// that turns it into a live Store lives with the implementations'
// importer (cluster.OpenStore), so this package stays dependency-free.
type Config struct {
	// Backend is BackendMem (the default when empty) or BackendDisk.
	Backend string
	// Dir is the disk backend's root directory (one subdirectory per
	// node plus the shared WAL). Required for BackendDisk.
	Dir string
	// Fsync is the disk backend's durability policy: "commit" (the
	// default — data is fsynced before each commit record, the commit
	// record's fsync is the commit point), "always" (every append
	// synced) or "never" (benchmark mode: no durability across power
	// loss, though the log still recovers from process kill).
	Fsync string
	// MaxSegmentBytes caps each append-only segment file before the
	// writer rolls to a new one; 0 selects the disk backend's default.
	MaxSegmentBytes int64
}
