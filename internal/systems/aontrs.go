package systems

import (
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/aont"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/sec"
)

// AONTRS is Resch & Plank's dispersed storage system (Cleversafe / IBM
// Cloud Object Storage): the all-or-nothing transform blends a random key
// into the data package, which is then erasure-coded across nodes. Below
// the threshold a PPT adversary learns nothing and *no key management
// exists at all*; at or above the threshold the inverse is public. The
// paper's §3.2 caveat is implemented literally in Breach: once the
// underlying cipher or hash family breaks, even a single harvested shard
// leaks plaintext blocks.
type AONTRS struct {
	Cluster *cluster.Cluster
	Scheme  *aont.Scheme
	pkgLen  map[string]int
}

// NewAONTRS builds the system with k-of-n dispersal.
func NewAONTRS(c *cluster.Cluster, k, n int) (*AONTRS, error) {
	sch, err := aont.NewScheme(k, n)
	if err != nil {
		return nil, err
	}
	if n > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
	}
	return &AONTRS{Cluster: c, Scheme: sch, pkgLen: make(map[string]int)}, nil
}

// Name implements Archive.
func (s *AONTRS) Name() string { return "AONT-RS" }

// Store implements Archive.
func (s *AONTRS) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	shards, pkgLen, err := s.Scheme.Encode(data)
	if err != nil {
		return nil, err
	}
	if err := putShards(s.Cluster, object, shards); err != nil {
		return nil, err
	}
	s.pkgLen[object] = pkgLen
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// Retrieve implements Archive.
func (s *AONTRS) Retrieve(ref *Ref) ([]byte, error) {
	pkgLen, ok := s.pkgLen[ref.Object]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	shards := getShards(s.Cluster, ref.Object, s.Scheme.Code.TotalShards())
	pt, err := s.Scheme.Decode(shards, pkgLen, ref.PlainLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	return pt, nil
}

// Renew implements Archive: AONT-RS has no in-place refresh; renewal is a
// full re-encode (read, new blended key, rewrite) — §3.2's I/O bill.
func (s *AONTRS) Renew(ref *Ref, rnd io.Reader) error {
	data, err := s.Retrieve(ref)
	if err != nil {
		return err
	}
	_, err = s.Store(ref.Object, data, rnd)
	return err
}

// Classify implements Archive.
func (s *AONTRS) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.Computational,
		RestClass:    sec.Computational,
	}
}

// Breach implements Archive. Threshold met → full plaintext (the inverse
// is public — no break needed). Below threshold: a break of the AES or
// hash family turns any single shard into plaintext blocks ("the attacker
// trivially knows the key", §3.2).
func (s *AONTRS) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	have := adv.MaxAnyEpochShards(ref.Object)
	k := s.Scheme.Code.DataShards()
	if have >= k {
		pt, err := s.Retrieve(ref)
		if err != nil {
			return BreachResult{Violated: true, Reason: "threshold met; package partially lost"}
		}
		return BreachResult{Violated: true, Full: true, Recovered: pt,
			Reason: fmt.Sprintf("%d/%d shards harvested: public inverse applies", have, k)}
	}
	if have >= 1 && (breaks.CipherBrokenAt(cascade.AES256CTR, epoch) || breaks.HashBrokenAt(epoch)) {
		return BreachResult{Violated: true, Full: false,
			Reason: "cipher/hash break: single shard leaks plaintext blocks"}
	}
	return BreachResult{Reason: fmt.Sprintf("%d/%d shards, primitives unbroken", have, k)}
}
