package systems

import (
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/rs"
	"securearchive/internal/sec"
)

// ArchiveSafeLT models Sabry & Samavi's cascade-cipher archive: each
// object is wrapped in layers of ciphers from independent families, the
// envelope is erasure-coded across nodes, and when a layer's family is
// presumed weakened the archive wraps a NEW outer layer without
// decrypting (Renew). The cascade is secure while at least one layer
// survives; storage cost stays low; and the harvest-now-decrypt-later
// adversary wins only after every family in a harvested envelope's stack
// has fallen.
type ArchiveSafeLT struct {
	Cluster *cluster.Cluster
	Code    *rs.Code
	Stack   []cascade.Scheme
	// keys is the owner's keyring: object → layer keys (never on nodes).
	keys   map[string][]cascade.LayerKey
	layers map[string][]cascade.Layer
	ctLen  map[string]int
}

// NewArchiveSafeLT builds the system with the given layer stack and
// k-of-(k+m) dispersal.
func NewArchiveSafeLT(c *cluster.Cluster, stack []cascade.Scheme, dataShards, parityShards int) (*ArchiveSafeLT, error) {
	if len(stack) == 0 {
		stack = cascade.Schemes()
	}
	code, err := rs.New(dataShards, parityShards)
	if err != nil {
		return nil, err
	}
	if code.TotalShards() > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, code.TotalShards())
	}
	return &ArchiveSafeLT{
		Cluster: c,
		Code:    code,
		Stack:   stack,
		keys:    make(map[string][]cascade.LayerKey),
		layers:  make(map[string][]cascade.Layer),
		ctLen:   make(map[string]int),
	}, nil
}

// Name implements Archive.
func (s *ArchiveSafeLT) Name() string { return "ArchiveSafeLT" }

// Store implements Archive.
func (s *ArchiveSafeLT) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	keys, err := cascade.GenerateKeys(s.Stack, rnd)
	if err != nil {
		return nil, err
	}
	env, err := cascade.Encrypt(data, keys, rnd)
	if err != nil {
		return nil, err
	}
	shards, err := s.Code.Encode(env.Body)
	if err != nil {
		return nil, err
	}
	if err := putShards(s.Cluster, object, shards); err != nil {
		return nil, err
	}
	s.keys[object] = keys
	s.layers[object] = env.Layers
	s.ctLen[object] = len(env.Body)
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// envelope rebuilds the stored envelope from the cluster.
func (s *ArchiveSafeLT) envelope(ref *Ref) (*cascade.Envelope, error) {
	layers, ok := s.layers[ref.Object]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	shards := getShards(s.Cluster, ref.Object, s.Code.TotalShards())
	if err := s.Code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	body, err := s.Code.Join(shards, s.ctLen[ref.Object])
	if err != nil {
		return nil, err
	}
	return &cascade.Envelope{Layers: layers, Body: body}, nil
}

// Retrieve implements Archive.
func (s *ArchiveSafeLT) Retrieve(ref *Ref) ([]byte, error) {
	env, err := s.envelope(ref)
	if err != nil {
		return nil, err
	}
	return cascade.Decrypt(env, s.keys[ref.Object])
}

// Renew implements Archive: the ArchiveSafeLT response to a weakening
// layer — read the envelope, wrap one fresh outer layer (a cipher family
// chosen round-robin), and re-store. No decryption happens, but the full
// envelope IS read and rewritten: the I/O bill of §3.2 applies.
func (s *ArchiveSafeLT) Renew(ref *Ref, rnd io.Reader) error {
	env, err := s.envelope(ref)
	if err != nil {
		return err
	}
	next := s.Stack[len(s.layers[ref.Object])%len(s.Stack)]
	nk, err := cascade.GenerateKeys([]cascade.Scheme{next}, rnd)
	if err != nil {
		return err
	}
	if err := cascade.Wrap(env, nk[0], rnd); err != nil {
		return err
	}
	shards, err := s.Code.Encode(env.Body)
	if err != nil {
		return err
	}
	if err := putShards(s.Cluster, ref.Object, shards); err != nil {
		return err
	}
	s.keys[ref.Object] = append(s.keys[ref.Object], nk[0])
	s.layers[ref.Object] = env.Layers
	s.ctLen[ref.Object] = len(env.Body)
	return nil
}

// Classify implements Archive.
func (s *ArchiveSafeLT) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.Computational,
		RestClass:    sec.Computational,
	}
}

// Breach implements Archive. The envelope falls only when the adversary
// holds enough shards AND every layer family in the stack it harvested is
// broken; any surviving layer shields everything beneath it.
func (s *ArchiveSafeLT) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	layers, ok := s.layers[ref.Object]
	if !ok {
		return BreachResult{Reason: "object unknown"}
	}
	have := adv.MaxAnyEpochShards(ref.Object)
	if have < s.Code.DataShards() {
		return BreachResult{Reason: fmt.Sprintf("only %d/%d shards harvested", have, s.Code.DataShards())}
	}
	broken := make(map[cascade.Scheme]bool)
	for _, l := range layers {
		if breaks.CipherBrokenAt(l.Scheme, epoch) {
			broken[l.Scheme] = true
		}
	}
	env := &cascade.Envelope{Layers: layers}
	if env.SecureAgainst(broken) {
		return BreachResult{Reason: "at least one cascade layer survives"}
	}
	// Every layer broken: cryptanalysis recovers each layer key in turn.
	full, err := s.envelope(ref)
	if err != nil {
		return BreachResult{Violated: true, Reason: "all layers broken; ciphertext partially lost"}
	}
	keys := s.keys[ref.Object]
	pt, remaining, err := cascade.StripBroken(full, broken, func(layer int, _ cascade.Scheme) []byte {
		return keys[layer].Key
	})
	if err != nil || len(remaining) != 0 {
		return BreachResult{Violated: true, Reason: "all layers broken; strip failed"}
	}
	return BreachResult{Violated: true, Full: true, Recovered: pt,
		Reason: "harvested envelope + every cascade family broken"}
}
