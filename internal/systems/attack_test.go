package systems

import (
	"bytes"
	"crypto/rand"
	"testing"

	"securearchive/internal/adversary"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/group"
)

// harvestAll corrupts every node over successive epochs with the given
// per-epoch budget, advancing the cluster clock. It models the patient
// mobile adversary sweeping the whole fleet.
func harvestAll(c *cluster.Cluster, adv *adversary.Mobile, epochs int) {
	for e := 0; e < epochs; e++ {
		adv.CorruptRandom(c)
		c.AdvanceEpoch()
	}
}

// allBroken is the far-future doomsday: every computational primitive has
// fallen (epoch 100).
var allBroken = adversary.Breaks{
	Ciphers: map[cascade.Scheme]int{
		cascade.AES256CTR: 100, cascade.ChaCha20: 100, cascade.SHA256CTR: 100,
	},
	HashBroken: 100,
}

// TestHNDLDoomsdayOutcomes is experiment E4: harvest everything at epoch
// 0-9 (no renewals), then break all computational crypto at epoch 100.
// Every computationally protected system falls retroactively; every
// information-theoretic system holds.
func TestHNDLDoomsdayOutcomes(t *testing.T) {
	systems, c := allSystems(t)
	refs := map[string]*Ref{}
	for name, sys := range systems {
		ref, err := sys.Store("hndl-"+name, dataFor(name), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	adv := adversary.NewMobile(2, 77)
	harvestAll(c, adv, 12) // enough epochs to sweep all 8 nodes

	// At harvest time (epoch < 100) nothing computational is broken yet:
	// the computational systems must NOT be breached except those whose
	// threshold was met by raw shard count.
	now := c.Epoch()
	if got := systems["cloud"].Breach(adv, refs["cloud"], allBroken, now); got.Violated {
		t.Fatalf("cloud breached before the break epoch: %s", got.Reason)
	}

	// Fast-forward to the doomsday epoch.
	const doomsday = 100

	// Computational systems fall.
	for _, name := range []string{"cloud", "archivesafe"} {
		res := systems[name].Breach(adv, refs[name], allBroken, doomsday)
		if !res.Violated || !res.Full {
			t.Fatalf("%s survived doomsday: %+v", name, res)
		}
		if !bytes.Equal(res.Recovered, dataFor(name)) {
			t.Fatalf("%s: recovered plaintext mismatch", name)
		}
	}
	// AONT-RS falls even EARLIER: the adversary swept all nodes, so it has
	// ≥ k shards and the inverse is public — no break needed.
	res := systems["aontrs"].Breach(adv, refs["aontrs"], adversary.Breaks{}, now)
	if !res.Full {
		t.Fatalf("aontrs with full harvest should fall without breaks: %+v", res)
	}

	// POTSHARDS (static ITS shares): the full sweep accumulated a
	// threshold across epochs — the mobile-adversary drawback, not a
	// crypto break.
	res = systems["potshards"].Breach(adv, refs["potshards"], adversary.Breaks{}, doomsday)
	if !res.Full {
		t.Fatalf("potshards should fall to the patient mobile adversary: %+v", res)
	}

	// The renewing ITS systems hold — NO renewals ran here, so they
	// actually fall too (shares static across the sweep). This documents
	// that ITS-at-rest without refresh is not enough.
	res = systems["vsr"].Breach(adv, refs["vsr"], allBroken, doomsday)
	if !res.Full {
		t.Fatalf("vsr without renewals should fall like potshards: %+v", res)
	}
}

// TestRenewalDefeatsMobileAdversary is experiment E5: identical sweep,
// but the victim renews between adversary strikes. The renewing systems
// survive; POTSHARDS (no renewal) falls.
func TestRenewalDefeatsMobileAdversary(t *testing.T) {
	systems, c := allSystems(t)
	vsr := systems["vsr"].(*VSRArchive)
	pot := systems["potshards"].(*POTSHARDS)
	lin := systems["lincos"].(*LINCOS)

	vsrRef, err := vsr.Store("obj-vsr", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	potRef, err := pot.Store("obj-pot", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	linRef, err := lin.Store("obj-lin", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	// Budget 1 per epoch vs threshold 3, renewal every epoch: the
	// adversary can never hold 3 same-epoch shares.
	adv := adversary.NewMobile(1, 13)
	for e := 0; e < 20; e++ {
		adv.CorruptRandom(c)
		c.AdvanceEpoch()
		if err := vsr.Renew(vsrRef, rand.Reader); err != nil {
			t.Fatal(err)
		}
		if err := lin.Renew(linRef, rand.Reader); err != nil {
			t.Fatal(err)
		}
		// POTSHARDS cannot renew.
	}

	if res := vsr.Breach(adv, vsrRef, allBroken, 1000); res.Violated {
		t.Fatalf("VSR with per-epoch renewal breached: %s", res.Reason)
	}
	if res := lin.Breach(adv, linRef, allBroken, 1000); res.Violated {
		t.Fatalf("LINCOS with per-epoch renewal breached: %s", res.Reason)
	}
	res := pot.Breach(adv, potRef, allBroken, 1000)
	if !res.Full || !bytes.Equal(res.Recovered, payload) {
		t.Fatalf("POTSHARDS should fall to the 20-epoch sweep: %+v", res)
	}

	// And the renewing archives still serve reads.
	got, err := vsr.Retrieve(vsrRef)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("VSR unreadable after 20 renewals: %v", err)
	}
}

// TestRenewalRaceLost: if the adversary's budget reaches the threshold
// within one epoch, renewal cannot save the sharing — the paper's point
// that the corruption threshold is a hard assumption.
func TestRenewalRaceLost(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, err := vsr.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewMobile(3, 5) // budget == threshold
	adv.Corrupt(c, 0)
	adv.Corrupt(c, 1)
	adv.Corrupt(c, 2)
	res := vsr.Breach(adv, ref, adversary.Breaks{}, 50)
	if !res.Full || !bytes.Equal(res.Recovered, payload) {
		t.Fatalf("threshold-budget adversary should win instantly: %+v", res)
	}
}

// TestCascadePartialBreakHolds: with only 2 of 3 families broken,
// ArchiveSafeLT holds even under full harvest — the combiner property
// end-to-end.
func TestCascadePartialBreakHolds(t *testing.T) {
	c := cluster.New(8, nil)
	asl, _ := NewArchiveSafeLT(c, nil, 4, 2)
	ref, err := asl.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewMobile(8, 9)
	adv.CorruptRandom(c)
	partial := adversary.Breaks{Ciphers: map[cascade.Scheme]int{
		cascade.AES256CTR: 10, cascade.ChaCha20: 10,
	}}
	if res := asl.Breach(adv, ref, partial, 100); res.Violated {
		t.Fatalf("cascade fell with one family surviving: %s", res.Reason)
	}
}

// TestAONTSingleShardLeakUnderBreak: below-threshold harvest + AES break
// → partial violation (the §3.2 "knows the key" caveat).
func TestAONTSingleShardLeakUnderBreak(t *testing.T) {
	c := cluster.New(8, nil)
	ars, _ := NewAONTRS(c, 4, 6)
	ref, err := ars.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewMobile(1, 3)
	adv.Corrupt(c, 0) // one shard only
	unbroken := ars.Breach(adv, ref, adversary.Breaks{}, 50)
	if unbroken.Violated {
		t.Fatalf("single shard with unbroken crypto leaked: %s", unbroken.Reason)
	}
	broken := ars.Breach(adv, ref, adversary.Breaks{Ciphers: map[cascade.Scheme]int{cascade.AES256CTR: 10}}, 50)
	if !broken.Violated || broken.Full {
		t.Fatalf("expected partial violation: %+v", broken)
	}
}

// TestHasDPSSRenewalDefeatsHarvest mirrors E5 for the key-management
// system: scalar shares from different epochs cannot be combined.
func TestHasDPSSRenewalDefeatsHarvest(t *testing.T) {
	c := cluster.New(8, nil)
	h, _ := NewHasDPSS(c, 6, 3, group.Test())
	key := []byte("a 28-byte master key secret!")
	ref, err := h.Store("k", key, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.NewMobile(1, 21)
	for e := 0; e < 12; e++ {
		adv.CorruptRandom(c)
		c.AdvanceEpoch()
		if err := h.Renew(ref, rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	if res := h.Breach(adv, ref, allBroken, 1000); res.Violated {
		t.Fatalf("HasDPSS with renewal breached: %s", res.Reason)
	}
	// Sanity: without renewal the same sweep wins.
	c2 := cluster.New(8, nil)
	h2, _ := NewHasDPSS(c2, 6, 3, group.Test())
	ref2, _ := h2.Store("k", key, rand.Reader)
	adv2 := adversary.NewMobile(1, 22)
	for e := 0; e < 12; e++ {
		adv2.CorruptRandom(c2)
		c2.AdvanceEpoch()
	}
	res := h2.Breach(adv2, ref2, allBroken, 1000)
	if !res.Full || !bytes.Equal(res.Recovered, key) {
		t.Fatalf("static HasDPSS shares should fall: %+v", res)
	}
}
