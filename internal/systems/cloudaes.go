package systems

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cascade"
	"securearchive/internal/cluster"
	"securearchive/internal/rs"
	"securearchive/internal/sec"
)

// CloudAES is the commodity-cloud baseline of Table 1's last row: AES-GCM
// (AES-256 with authenticated encryption, as AWS S3, Azure Storage and
// Google Cloud all apply by default) over erasure-coded placement. The
// provider holds the keys; the tenant holds nothing. Both transit (TLS,
// modelled as the same AES family) and rest are computationally secure
// and storage cost is low — and the system is the cleanest possible prey
// for Harvest Now, Decrypt Later.
type CloudAES struct {
	Cluster *cluster.Cluster
	Code    *rs.Code
	// keys is the provider KMS: object → AES-256 key. Node compromise
	// does not reveal it; a cryptanalytic AES break is modelled as key
	// recovery from ciphertext, i.e. the oracle opens.
	keys   map[string][]byte
	nonces map[string][]byte
	ctLen  map[string]int
}

// NewCloudAES builds the baseline over a cluster with at least
// dataShards+parityShards nodes.
func NewCloudAES(c *cluster.Cluster, dataShards, parityShards int) (*CloudAES, error) {
	code, err := rs.New(dataShards, parityShards)
	if err != nil {
		return nil, err
	}
	if code.TotalShards() > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, code.TotalShards())
	}
	return &CloudAES{
		Cluster: c,
		Code:    code,
		keys:    make(map[string][]byte),
		nonces:  make(map[string][]byte),
		ctLen:   make(map[string]int),
	}, nil
}

// Name implements Archive.
func (s *CloudAES) Name() string { return "AWS, Azure, Google Cloud" }

// Store implements Archive.
func (s *CloudAES) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	key := make([]byte, 32)
	if _, err := io.ReadFull(rnd, key); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return nil, err
	}
	ct := gcm.Seal(nil, nonce, data, []byte(object))
	shards, err := s.Code.Encode(ct)
	if err != nil {
		return nil, err
	}
	if err := putShards(s.Cluster, object, shards); err != nil {
		return nil, err
	}
	s.keys[object] = key
	s.nonces[object] = nonce
	s.ctLen[object] = len(ct)
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// Retrieve implements Archive.
func (s *CloudAES) Retrieve(ref *Ref) ([]byte, error) {
	key, ok := s.keys[ref.Object]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	shards, err := getShardsDegraded(s.Cluster, ref.Object, s.Code.TotalShards(), s.Code.DataShards())
	if err != nil {
		return nil, err
	}
	if err := s.Code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	ct, err := s.Code.Join(shards, s.ctLen[ref.Object])
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Open(nil, s.nonces[ref.Object], ct, []byte(ref.Object))
}

// Renew implements Archive: commodity clouds re-encrypt on demand, which
// is exactly the archive-scale I/O problem of §3.2; the mini-system
// performs it literally (decrypt, re-key, re-store).
func (s *CloudAES) Renew(ref *Ref, rnd io.Reader) error {
	data, err := s.Retrieve(ref)
	if err != nil {
		return err
	}
	_, err = s.Store(ref.Object, data, rnd)
	return err
}

// Classify implements Archive.
func (s *CloudAES) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.Computational, // TLS
		RestClass:    sec.Computational, // AES-GCM
	}
}

// Breach implements Archive. The attacker wins fully once it holds enough
// shards to rebuild the ciphertext (the erasure code is public) AND the
// AES family has fallen (break = key recovery).
func (s *CloudAES) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	have := adv.MaxAnyEpochShards(ref.Object)
	if have < s.Code.DataShards() {
		return BreachResult{Reason: fmt.Sprintf("only %d/%d shards harvested", have, s.Code.DataShards())}
	}
	if !breaks.CipherBrokenAt(cascade.AES256CTR, epoch) {
		return BreachResult{Reason: "ciphertext harvested but AES unbroken"}
	}
	// AES broken: cryptanalysis recovers the key; replay the decryption.
	pt, err := s.Retrieve(ref)
	if err != nil {
		return BreachResult{Violated: true, Reason: "key recovered; ciphertext partially lost"}
	}
	return BreachResult{Violated: true, Full: true, Recovered: pt,
		Reason: "harvested ciphertext + AES break"}
}
