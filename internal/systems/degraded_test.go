package systems

import (
	"crypto/rand"
	"errors"
	"strings"
	"testing"

	"securearchive/internal/cluster"
)

// Bugfix regression: a below-threshold stripe read must name the counts
// and the per-node causes, e.g. "insufficient shards: got 2, want 3
// (node 2: corrupt, node 3: down, node 4: down)" — not fail later inside
// the decoder with an opaque combine error.
func TestInsufficientShardsErrorText(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, err := NewVSRArchive(c, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := vsr.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 serves bytes that fail the commitment check; 3 and 4 are
	// down. Two verified shares remain — one short of the threshold.
	sh, _ := c.Get(2, cluster.ShardKey{Object: "obj", Index: 2})
	sh.Data[0] ^= 0xFF
	c.Put(2, cluster.ShardKey{Object: "obj", Index: 2}, sh.Data)
	c.SetOnline(3, false)
	c.SetOnline(4, false)

	_, err = vsr.Retrieve(ref)
	if !errors.Is(err, ErrRetrieval) {
		t.Fatalf("below-threshold retrieve: %v, want ErrRetrieval", err)
	}
	msg := err.Error()
	want := "insufficient shards: got 2, want 3 (node 2: corrupt, node 3: down, node 4: down)"
	if !strings.Contains(msg, want) {
		t.Fatalf("error text %q lacks %q", msg, want)
	}
}

// The shared degraded-read helper used by POTSHARDS/PASIS/CloudAES must
// attribute plain outages the same way.
func TestGetShardsDegradedAttribution(t *testing.T) {
	c := cluster.New(8, nil)
	pot, err := NewPOTSHARDS(c, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pot.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{2, 3, 4} {
		c.SetOnline(id, false)
	}
	_, err = pot.Retrieve(ref)
	if !errors.Is(err, ErrRetrieval) {
		t.Fatalf("below-threshold retrieve: %v, want ErrRetrieval", err)
	}
	msg := err.Error()
	want := "insufficient shards: got 2, want 3 (node 2: down, node 3: down, node 4: down)"
	if !strings.Contains(msg, want) {
		t.Fatalf("error text %q lacks %q", msg, want)
	}
}
