package systems

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/group"
)

func TestRetrieveUnknownRefs(t *testing.T) {
	systems, _ := allSystems(t)
	ghost := &Ref{Object: "never-stored", PlainLen: 10}
	for _, name := range []string{"cloud", "archivesafe", "aontrs", "hasdpss"} {
		if _, err := systems[name].Retrieve(ghost); !errors.Is(err, ErrUnknownRef) {
			t.Errorf("%s: unknown ref: %v", name, err)
		}
	}
	// The share-based systems fail with a retrieval error (no per-object
	// state beyond shards).
	for _, name := range []string{"potshards", "lincos"} {
		if _, err := systems[name].Retrieve(ghost); err == nil {
			t.Errorf("%s: ghost retrieve succeeded", name)
		}
	}
}

func TestRetrievalBelowThresholdFails(t *testing.T) {
	systems, c := allSystems(t)
	refs := map[string]*Ref{}
	for name, sys := range systems {
		ref, err := sys.Store("bt-"+name, dataFor(name), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	// Kill 6 of 8 nodes: every system's threshold is violated.
	for i := 0; i < 6; i++ {
		c.SetOnline(i, false)
	}
	for name, sys := range systems {
		if _, err := sys.Retrieve(refs[name]); err == nil {
			t.Errorf("%s: retrieved below threshold", name)
		}
	}
}

func TestBreachOnUnknownObject(t *testing.T) {
	systems, _ := allSystems(t)
	adv := adversary.NewMobile(1, 1)
	ghost := &Ref{Object: "ghost", PlainLen: 4}
	for name, sys := range systems {
		res := sys.Breach(adv, ghost, adversary.Breaks{}, 0)
		if res.Violated {
			t.Errorf("%s: breached a never-stored object", name)
		}
	}
}

func TestVSRRenewUnknownObject(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	if err := vsr.Renew(&Ref{Object: "ghost", PlainLen: 4}, rand.Reader); !errors.Is(err, ErrUnknownRef) {
		t.Fatalf("ghost renew: %v", err)
	}
}

func TestVSRRenewWithNodeDownFails(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, _ := vsr.Store("obj", payload, rand.Reader)
	c.SetOnline(2, false)
	// Herzberg renewal is all-hands: a missing holder aborts the round
	// (a real deployment would first run Repair or Redistribute).
	if err := vsr.Renew(ref, rand.Reader); err == nil {
		t.Fatal("renewal succeeded with a holder offline")
	}
}

func TestLINCOSIntegrityRejectsClusterTamper(t *testing.T) {
	c := cluster.New(8, nil)
	lin, err := NewLINCOS(c, 6, 3, group.Test(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lin.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a threshold of shards CONSISTENTLY is impossible without
	// the polynomial; corrupt three shards arbitrarily and let Shamir's
	// surplus consistency or the commitment chain catch the result.
	for i := 0; i < 3; i++ {
		sh, _ := c.Get(i, cluster.ShardKey{Object: "obj", Index: i})
		sh.Data[0] ^= 0xFF
		c.Put(i, cluster.ShardKey{Object: "obj", Index: i}, sh.Data)
	}
	got, err := lin.Retrieve(ref)
	if err == nil && bytes.Equal(got, payload) {
		t.Fatal("tampered shards retrieved as authentic")
	}
}

// TestLINCOSPadReplenishment: sustained stores exhaust the initial QKD
// pad pools; the system must run further sessions rather than fail.
func TestLINCOSPadReplenishment(t *testing.T) {
	c := cluster.New(8, nil)
	lin, err := NewLINCOS(c, 6, 3, group.Test(), 17)
	if err != nil {
		t.Fatal(err)
	}
	before := lin.QKDSessions
	big := make([]byte, 300<<10) // each store consumes 300 KiB per link pad
	for i := 0; i < 5; i++ {
		ref, err := lin.Store(string(rune('a'+i)), big, rand.Reader)
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		got, err := lin.Retrieve(ref)
		if err != nil || !bytes.Equal(got, big) {
			t.Fatalf("retrieve %d: %v", i, err)
		}
	}
	if lin.QKDSessions <= before {
		t.Fatal("no replenishment sessions ran despite pad exhaustion")
	}
}

func TestPASISReplicationBreachNeedsOneNode(t *testing.T) {
	c := cluster.New(8, nil)
	p, _ := NewPASIS(c, PASISReplication, 4, 1)
	ref, _ := p.Store("obj", payload, rand.Reader)
	adv := adversary.NewMobile(1, 4)
	res := p.Breach(adv, ref, adversary.Breaks{}, 0)
	if res.Violated {
		t.Fatal("breach before any corruption")
	}
	adv.Corrupt(c, 0)
	res = p.Breach(adv, ref, adversary.Breaks{}, 0)
	if !res.Full || !bytes.Equal(res.Recovered, payload) {
		t.Fatalf("replication breach: %+v", res)
	}
}

func TestPASISErasureBreachPartial(t *testing.T) {
	c := cluster.New(8, nil)
	p, _ := NewPASIS(c, PASISErasure, 6, 3)
	ref, _ := p.Store("obj", payload, rand.Reader)
	adv := adversary.NewMobile(1, 6)
	adv.Corrupt(c, 0)
	res := p.Breach(adv, ref, adversary.Breaks{}, 0)
	if !res.Violated || res.Full {
		t.Fatalf("one systematic shard should be a partial leak: %+v", res)
	}
	adv2 := adversary.NewMobile(3, 7)
	adv2.Corrupt(c, 0)
	adv2.Corrupt(c, 1)
	adv2.Corrupt(c, 2)
	res = p.Breach(adv2, ref, adversary.Breaks{}, 0)
	if !res.Full {
		t.Fatalf("k shards should fully decode: %+v", res)
	}
}

func TestCloudAESRenewRotatesKey(t *testing.T) {
	c := cluster.New(8, nil)
	cloud, _ := NewCloudAES(c, 4, 2)
	ref, _ := cloud.Store("obj", payload, rand.Reader)
	k1 := append([]byte(nil), cloud.keys["obj"]...)
	if err := cloud.Renew(ref, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, cloud.keys["obj"]) {
		t.Fatal("renew did not rotate the key")
	}
	got, err := cloud.Retrieve(ref)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-renew retrieve: %v", err)
	}
}

func TestHasDPSSStaleShareRejectedAtRetrieve(t *testing.T) {
	c := cluster.New(8, nil)
	h, _ := NewHasDPSS(c, 6, 3, group.Test())
	key := []byte("a 28-byte master key secret!")
	ref, _ := h.Store("k", key, rand.Reader)
	// Keep node 0's pre-renewal shard and put it back afterwards: the
	// VSS check must reject it and route around.
	old, _ := c.Get(0, cluster.ShardKey{Object: "k", Index: 0})
	if err := h.Renew(ref, rand.Reader); err != nil {
		t.Fatal(err)
	}
	c.Put(0, cluster.ShardKey{Object: "k", Index: 0}, old.Data)
	got, err := h.Retrieve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("stale share poisoned retrieval despite VSS")
	}
}
