package systems

import (
	"bytes"
	"crypto/rand"
	"testing"

	"securearchive/internal/cluster"
)

// The survivable systems' read paths share the cluster's degraded
// k-of-n fetch: with transient faults everywhere and n−t providers
// offline, retrieval must still succeed.
func TestRetrieveDegradedUnderFaultPlan(t *testing.T) {
	c := cluster.New(6, nil)
	pots, err := NewPOTSHARDS(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	vsr, err := NewVSRArchive(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	pasis, err := NewPASIS(c, PASISErasure, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := NewPASIS(c, PASISReplication, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("system-layer degraded read payload")
	refs := map[string]*Ref{}
	for name, a := range map[string]Archive{"pots": pots, "vsr": vsr, "pasis": pasis, "repl": repl} {
		ref, err := a.Store("obj-"+name, data, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	// Nodes 0–2 offline, survivors 30% flaky: exactly t=3 providers left.
	plan := &cluster.FaultPlan{
		Seed:    13,
		Default: cluster.NodeFaults{TransientProb: 0.3},
		Nodes: map[int]cluster.NodeFaults{
			0: {Offline: []cluster.Window{{From: 0, To: 100}}},
			1: {Offline: []cluster.Window{{From: 0, To: 100}}},
			2: {Offline: []cluster.Window{{From: 0, To: 100}}},
		},
	}
	c.SetFaultPlan(plan)
	for name, a := range map[string]Archive{"pots": pots, "vsr": vsr, "pasis": pasis, "repl": repl} {
		got, err := a.Retrieve(refs[name])
		if err != nil {
			t.Fatalf("%s retrieve under faults: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s returned wrong bytes under faults", name)
		}
	}
}

// VSR's commitment check runs inside the degraded fetch: a provider
// serving rotted bytes is skipped and another provider used instead.
func TestVSRRetrieveSkipsRottedProvider(t *testing.T) {
	c := cluster.New(6, nil)
	vsr, err := NewVSRArchive(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("commitments catch rot during the read")
	ref, err := vsr.Store("obj", data, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 serves bit-rotted shares from now on.
	c.SetFaultPlan(&cluster.FaultPlan{Seed: 3, Nodes: map[int]cluster.NodeFaults{
		1: {CorruptProb: 1.0},
	}})
	got, err := vsr.Retrieve(ref)
	if err != nil {
		t.Fatalf("retrieve with rotted provider: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("rotted share reached the combiner")
	}
}
