package systems

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/pss"
	"securearchive/internal/sec"
	"securearchive/internal/vss"
)

// HasDPSS models Zhang et al.'s decentralised key-management system
// (CIKM '23): secrets (keys) protected by *dynamic* proactive secret
// sharing with Pedersen-VSS verification, and every committee operation
// recorded on an append-only hash chain — the blockchain component that
// makes the committee's history publicly auditable. It is the paper's
// §4 pointer that secret-shared archives should borrow key-management
// architecture.
//
// The archival objects here are key-sized secrets (≤ the group's scalar
// capacity): Table 1 classifies the system's payload, which IS the keys.
// Shares live on cluster nodes as serialised scalars; renewal runs the
// verified scalar-PSS protocol and appends a ledger block.
type HasDPSS struct {
	Cluster *cluster.Cluster
	N, T    int
	Group   *group.Group
	// committees tracks the live scalar committee per object.
	committees map[string]*pss.ScalarCommittee
	secretLen  map[string]int
	// Ledger is the audit chain: block i hashes block i-1 plus the
	// operation description. Tampering with history is detectable by
	// anyone replaying the chain.
	Ledger []LedgerBlock
}

// LedgerBlock is one audit-chain entry.
type LedgerBlock struct {
	PrevHash [sha256.Size]byte
	Op       string
	Epoch    int
}

// Hash hashes the block for chaining.
func (b LedgerBlock) Hash() [sha256.Size]byte {
	h := sha256.New()
	h.Write(b.PrevHash[:])
	h.Write([]byte(b.Op))
	var e [8]byte
	for i := 0; i < 8; i++ {
		e[i] = byte(uint64(b.Epoch) >> (8 * i))
	}
	h.Write(e[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// NewHasDPSS builds the system.
func NewHasDPSS(c *cluster.Cluster, n, t int, grp *group.Group) (*HasDPSS, error) {
	if n > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("systems: invalid threshold %d of %d", t, n)
	}
	if grp == nil {
		grp = group.Default()
	}
	return &HasDPSS{
		Cluster: c, N: n, T: t, Group: grp,
		committees: make(map[string]*pss.ScalarCommittee),
		secretLen:  make(map[string]int),
	}, nil
}

// Name implements Archive.
func (s *HasDPSS) Name() string { return "HasDPSS" }

// appendLedger chains an operation record.
func (s *HasDPSS) appendLedger(op string) {
	var prev [sha256.Size]byte
	if len(s.Ledger) > 0 {
		prev = s.Ledger[len(s.Ledger)-1].Hash()
	}
	s.Ledger = append(s.Ledger, LedgerBlock{PrevHash: prev, Op: op, Epoch: s.Cluster.Epoch()})
}

// VerifyLedger replays the audit chain.
func (s *HasDPSS) VerifyLedger() error {
	var prev [sha256.Size]byte
	for i, b := range s.Ledger {
		if b.PrevHash != prev {
			return fmt.Errorf("systems: ledger block %d does not chain", i)
		}
		prev = b.Hash()
	}
	return nil
}

// Store implements Archive: data must fit the scalar capacity (these are
// keys, not bulk objects).
func (s *HasDPSS) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	if len(data) == 0 || len(data) > s.Group.ScalarCapacity() {
		return nil, fmt.Errorf("systems: HasDPSS stores key-sized secrets (1..%d bytes), got %d",
			s.Group.ScalarCapacity(), len(data))
	}
	cm, err := pss.NewScalarCommittee(s.Group, new(big.Int).SetBytes(data), s.N, s.T, rnd)
	if err != nil {
		return nil, err
	}
	for i, sh := range cm.Shares {
		payload := encodeScalarShare(sh.S, sh.Blind)
		if err := s.Cluster.Put(i, cluster.ShardKey{Object: object, Index: i}, payload); err != nil {
			return nil, err
		}
	}
	s.committees[object] = cm
	s.secretLen[object] = len(data)
	s.appendLedger("store " + object)
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// encodeScalarShare serialises (S, Blind) with length framing.
func encodeScalarShare(sc, blind *big.Int) []byte {
	sb := sc.Bytes()
	bb := blind.Bytes()
	out := make([]byte, 0, 4+len(sb)+len(bb))
	out = append(out, byte(len(sb)>>8), byte(len(sb)))
	out = append(out, sb...)
	out = append(out, byte(len(bb)>>8), byte(len(bb)))
	out = append(out, bb...)
	return out
}

// decodeScalarShare reverses encodeScalarShare.
func decodeScalarShare(b []byte) (*big.Int, *big.Int, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("systems: truncated scalar share")
	}
	sl := int(b[0])<<8 | int(b[1])
	if len(b) < 2+sl+2 {
		return nil, nil, fmt.Errorf("systems: truncated scalar share")
	}
	sc := new(big.Int).SetBytes(b[2 : 2+sl])
	rest := b[2+sl:]
	bl := int(rest[0])<<8 | int(rest[1])
	if len(rest) < 2+bl {
		return nil, nil, fmt.Errorf("systems: truncated scalar share")
	}
	blind := new(big.Int).SetBytes(rest[2 : 2+bl])
	return sc, blind, nil
}

// Retrieve implements Archive, verifying shares against the committee's
// public commitments before combining.
func (s *HasDPSS) Retrieve(ref *Ref) ([]byte, error) {
	cm, ok := s.committees[ref.Object]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	shares := make([]vss.Share, 0, cm.T)
	for i := 0; i < cm.N && len(shares) < cm.T; i++ {
		sh, err := s.Cluster.GetRetry(i, cluster.ShardKey{Object: ref.Object, Index: i}, cluster.DefaultRetry)
		if err != nil {
			continue
		}
		sc, blind, err := decodeScalarShare(sh.Data)
		if err != nil {
			continue
		}
		cand := vss.Share{X: int64(i + 1), S: sc, Blind: blind}
		if err := vss.Verify(cm.Comms, cand); err != nil {
			continue // stale or corrupt share: rejected, not combined
		}
		shares = append(shares, cand)
	}
	if len(shares) < cm.T {
		return nil, fmt.Errorf("%w: %d/%d verified shares", ErrRetrieval, len(shares), cm.T)
	}
	val, err := vss.Combine(s.Group, shares, cm.T)
	if err != nil {
		return nil, err
	}
	out := make([]byte, s.secretLen[ref.Object])
	vb := val.Bytes()
	if len(vb) > len(out) {
		return nil, fmt.Errorf("%w: reconstructed value too large", ErrRetrieval)
	}
	copy(out[len(out)-len(vb):], vb)
	return out, nil
}

// Renew implements Archive: the verified scalar-PSS renewal, with node
// state and ledger updated.
func (s *HasDPSS) Renew(ref *Ref, rnd io.Reader) error {
	cm, ok := s.committees[ref.Object]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	if err := cm.Renew(rnd); err != nil {
		return err
	}
	for i, sh := range cm.Shares {
		payload := encodeScalarShare(sh.S, sh.Blind)
		if err := s.Cluster.Put(i, cluster.ShardKey{Object: ref.Object, Index: i}, payload); err != nil {
			return err
		}
	}
	s.appendLedger("renew " + ref.Object)
	return nil
}

// Resize runs verifiable redistribution to change one object's committee
// shape (the "dynamic" in HasDPSS): shards are rewritten for the new
// committee, shards of departed members are deleted, and the operation
// is chained into the audit ledger.
func (s *HasDPSS) Resize(ref *Ref, nNew, tNew int, rnd io.Reader) error {
	cm, ok := s.committees[ref.Object]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	if nNew > s.Cluster.Size() {
		return fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, nNew)
	}
	oldN := cm.N
	cm2, err := cm.Redistribute(nNew, tNew, rnd)
	if err != nil {
		return err
	}
	for i, sh := range cm2.Shares {
		payload := encodeScalarShare(sh.S, sh.Blind)
		if err := s.Cluster.Put(i, cluster.ShardKey{Object: ref.Object, Index: i}, payload); err != nil {
			return err
		}
	}
	for i := nNew; i < oldN; i++ {
		if err := s.Cluster.Delete(i, cluster.ShardKey{Object: ref.Object, Index: i}); err != nil {
			return err
		}
	}
	s.committees[ref.Object] = cm2
	s.appendLedger(fmt.Sprintf("resize %s to (%d,%d)", ref.Object, tNew, nNew))
	return nil
}

// Classify implements Archive.
func (s *HasDPSS) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.Computational,
		RestClass:    sec.IT,
	}
}

// Breach implements Archive: same-epoch scalar shares above the threshold
// reconstruct; renewal invalidates older hauls.
func (s *HasDPSS) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	cm, ok := s.committees[ref.Object]
	if !ok {
		return BreachResult{Reason: "object unknown"}
	}
	best := 0
	var bestShares []vss.Share
	for _, byIdx := range adv.DistinctShards(ref.Object) {
		if len(byIdx) <= best {
			continue
		}
		cur := make([]vss.Share, 0, len(byIdx))
		for idx, data := range byIdx {
			sc, blind, err := decodeScalarShare(data)
			if err != nil {
				continue
			}
			cur = append(cur, vss.Share{X: int64(idx + 1), S: sc, Blind: blind})
		}
		if len(cur) > best {
			best = len(cur)
			bestShares = cur
		}
	}
	if best < cm.T {
		return BreachResult{Reason: fmt.Sprintf("best same-epoch haul is %d/%d shares", best, cm.T)}
	}
	val, err := vss.Combine(s.Group, bestShares[:cm.T], cm.T)
	if err != nil {
		return BreachResult{Violated: true, Reason: "threshold met but shares malformed"}
	}
	out := make([]byte, s.secretLen[ref.Object])
	vb := val.Bytes()
	if len(vb) <= len(out) {
		copy(out[len(out)-len(vb):], vb)
	}
	return BreachResult{Violated: true, Full: true, Recovered: out,
		Reason: "adversary out-raced the renewal period"}
}
