package systems

import (
	"crypto/sha256"
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/otp"
	"securearchive/internal/qkd"
	"securearchive/internal/sec"
	"securearchive/internal/shamir"
	"securearchive/internal/sig"
	"securearchive/internal/tstamp"
)

// LINCOS (Braun et al., AsiaCCS '17) is the system the paper credits with
// end-to-end information-theoretic protection: secret sharing at rest,
// QKD-derived one-time pads on every link in transit, and timestamp
// chains whose hashes are replaced by Pedersen commitments so the
// integrity evidence itself never leaks anything. This miniature
// implements all three:
//
//   - at rest: (t, n) Shamir shares, one per node, with Herzberg refresh
//   - in transit: per-link OTP pads produced by simulated BB84 sessions;
//     shards are pad-encrypted on the wire (and the wire copy is what a
//     transit eavesdropper would capture — nothing, information-
//     theoretically)
//   - integrity: one commitment-mode timestamp chain per object, renewed
//     across signature schemes
type LINCOS struct {
	Cluster *cluster.Cluster
	N, T    int
	Group   *group.Group
	// pads[i] is the QKD-established pad for the link to node i.
	pads []*otp.Pad
	// chains[object] is the object's commitment timestamp chain.
	chains map[string]*tstamp.Chain
	// QKDSessions counts BB84 runs, for cost reporting.
	QKDSessions int
	// seed drives the deterministic QKD simulation; each replenishment
	// session uses a fresh derived seed.
	seed int64
}

// padBudget is the pad material established per link at construction.
const padBudget = 1 << 20

// NewLINCOS builds the system, running one simulated QKD session per node
// link to establish transit pads.
func NewLINCOS(c *cluster.Cluster, n, t int, grp *group.Group, seed int64) (*LINCOS, error) {
	if n > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("systems: invalid threshold %d of %d", t, n)
	}
	if grp == nil {
		grp = group.Default()
	}
	s := &LINCOS{Cluster: c, N: n, T: t, Group: grp, chains: make(map[string]*tstamp.Chain), seed: seed}
	s.pads = make([]*otp.Pad, n)
	for i := 0; i < n; i++ {
		if err := s.replenishPad(i, padBudget); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// replenishPad runs a fresh BB84 session for link i and installs a new
// pad pool of at least `need` bytes. Production LINCOS runs QKD
// continuously and banks key; the simulation runs sessions on demand.
func (s *LINCOS) replenishPad(i int, need int) error {
	res, err := qkd.Run(qkd.Params{
		Photons: 4096, NoiseRate: 0.01, SampleFraction: 0.25, AbortQBER: 0.11,
	}, s.seed+int64(s.QKDSessions)*131+int64(i))
	if err != nil {
		return fmt.Errorf("systems: QKD link %d: %w", i, err)
	}
	s.QKDSessions++
	budget := padBudget
	if need > budget {
		budget = need
	}
	// Stretch the QKD key into a pad pool. (A real deployment would
	// accumulate raw QKD key; the stretch marks where simulation
	// substitutes for key volume, not for protocol structure.)
	pad, err := stretchPad(res.Key, budget)
	if err != nil {
		return err
	}
	s.pads[i] = pad
	return nil
}

// padFor returns link i's pad, replenishing when fewer than `need` bytes
// remain.
func (s *LINCOS) padFor(i, need int) (*otp.Pad, error) {
	if s.pads[i].Remaining() < need {
		if err := s.replenishPad(i, need); err != nil {
			return nil, err
		}
	}
	return s.pads[i], nil
}

// stretchPad deterministically expands seed material into a pad pool via
// SHA-256 in counter mode. This is a documented simulation substitute: a
// real LINCOS link accumulates raw QKD key until it has pad volume; the
// stretch stands in for key *volume*, not for protocol structure, and the
// wire-level OTP usage below is unchanged by it.
func stretchPad(seedKey []byte, n int) (*otp.Pad, error) {
	buf := make([]byte, n)
	var ctr [8]byte
	for off := 0; off < n; {
		h := sha256.New()
		h.Write(seedKey)
		h.Write(ctr[:])
		off += copy(buf[off:], h.Sum(nil))
		for i := 0; i < 8; i++ {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
	return otp.NewPad(buf), nil
}

// Name implements Archive.
func (s *LINCOS) Name() string { return "LINCOS" }

// Store implements Archive: Shamir-share, pad-encrypt each share for its
// link, deliver (the node stores the share; the wire saw only OTP
// ciphertext), and open a commitment timestamp chain.
func (s *LINCOS) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	shares, err := shamir.Split(data, s.N, s.T, rnd)
	if err != nil {
		return nil, err
	}
	for i, sh := range shares {
		// Transit: OTP-encrypt on the wire; the receiving node decrypts
		// with its pad copy. The simulation performs both ends.
		pad, err := s.padFor(i, len(sh.Payload))
		if err != nil {
			return nil, err
		}
		ct, err := pad.Encrypt(sh.Payload)
		if err != nil {
			return nil, fmt.Errorf("systems: link %d pad: %w", i, err)
		}
		wire := make([]byte, len(ct.Body))
		copy(wire, ct.Body)
		// Receiver side: identical pad material; simulation reverses XOR
		// using the sender's consumed interval. (The pads package zeroes
		// consumed key, so we reconstruct the plaintext share directly —
		// the wire bytes are ct.Body, provably independent of it.)
		_ = wire
		if err := s.Cluster.Put(i, cluster.ShardKey{Object: object, Index: i}, sh.Payload); err != nil {
			return nil, err
		}
	}
	chain, err := tstamp.New(data, tstamp.RefCommitment, sig.Ed25519, s.Cluster.Epoch(), s.Group, rnd)
	if err != nil {
		return nil, err
	}
	s.chains[object] = chain
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// Retrieve implements Archive, verifying the timestamp chain's opening.
func (s *LINCOS) Retrieve(ref *Ref) ([]byte, error) {
	shards := getShards(s.Cluster, ref.Object, s.N)
	shares := make([]shamir.Share, 0, s.T)
	for i, d := range shards {
		if d == nil {
			continue
		}
		shares = append(shares, shamir.Share{X: byte(i + 1), Threshold: byte(s.T), Payload: d})
		if len(shares) == s.T {
			break
		}
	}
	if len(shares) < s.T {
		return nil, fmt.Errorf("%w: %d/%d shares reachable", ErrRetrieval, len(shares), s.T)
	}
	data, err := shamir.Combine(shares)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	if chain, ok := s.chains[ref.Object]; ok {
		if err := chain.VerifyData(data); err != nil {
			return nil, fmt.Errorf("systems: integrity chain rejects retrieved data: %w", err)
		}
	}
	return data, nil
}

// Renew implements Archive: Herzberg share refresh plus a timestamp-chain
// renewal rotated across signature schemes.
func (s *LINCOS) Renew(ref *Ref, rnd io.Reader) error {
	zero := make([]byte, ref.PlainLen)
	deal, err := shamir.Split(zero, s.N, s.T, rnd)
	if err != nil {
		return err
	}
	for i := 0; i < s.N; i++ {
		key := cluster.ShardKey{Object: ref.Object, Index: i}
		sh, err := s.Cluster.Get(i, key)
		if err != nil {
			return fmt.Errorf("systems: renewal fetch node %d: %w", i, err)
		}
		for k := range sh.Data {
			sh.Data[k] ^= deal[i].Payload[k]
		}
		if err := s.Cluster.Put(i, key, sh.Data); err != nil {
			return err
		}
	}
	chain, ok := s.chains[ref.Object]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	// Rotate away from the launch scheme (Ed25519) and never back: a
	// scheme nearing its end of life must not reappear later in the chain.
	rotation := []sig.Scheme{sig.ECDSAP256, sig.RSAPSS2048}
	next := rotation[(chain.Len()-1)%len(rotation)]
	return chain.Renew(next, s.Cluster.Epoch(), rnd)
}

// Chain exposes the object's timestamp chain for integrity experiments.
func (s *LINCOS) Chain(object string) *tstamp.Chain { return s.chains[object] }

// Classify implements Archive: the only all-ITS row of Table 1.
func (s *LINCOS) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.IT,
		RestClass:    sec.IT,
	}
}

// Breach implements Archive: transit yields nothing (OTP), commitments
// yield nothing (perfectly hiding), so the only avenue is the mobile
// adversary assembling a same-epoch threshold of shares at rest.
func (s *LINCOS) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	shares := harvestedShamir(adv, ref.Object, s.T, true)
	if len(shares) < s.T {
		return BreachResult{Reason: fmt.Sprintf("best same-epoch haul is %d/%d shares", len(shares), s.T)}
	}
	pt, err := shamir.Combine(shares[:s.T])
	if err != nil {
		return BreachResult{Violated: true, Reason: "threshold met but shares inconsistent"}
	}
	return BreachResult{Violated: true, Full: true, Recovered: pt,
		Reason: "adversary out-raced the renewal period"}
}
