package systems

import (
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/rs"
	"securearchive/internal/sec"
)

// PASISMode selects PASIS's per-object data encoding.
type PASISMode int

// The encodings PASIS lets its users pick from — the "no one size fits
// all" position the paper quotes.
const (
	// PASISReplication: r full copies. No confidentiality, lowest latency.
	PASISReplication PASISMode = iota
	// PASISErasure: k-of-n erasure coding. No confidentiality, low cost.
	PASISErasure
	// PASISEncryptEC: AES + erasure coding. Computational, low cost.
	PASISEncryptEC
	// PASISSecretShare: (t, n) Shamir. Information-theoretic, high cost.
	PASISSecretShare
)

// String names the mode.
func (m PASISMode) String() string {
	switch m {
	case PASISReplication:
		return "replication"
	case PASISErasure:
		return "erasure"
	case PASISEncryptEC:
		return "encrypt+ec"
	case PASISSecretShare:
		return "secret-share"
	default:
		return fmt.Sprintf("PASISMode(%d)", int(m))
	}
}

// PASIS (Ganger et al., CMU) is the configurable survivable-storage
// framework: every object is stored under whichever p-m-n threshold
// scheme its owner picks, from replication through erasure coding to
// secret sharing. Table 1 renders that flexibility as "ITS (sometimes)"
// at rest and "Low-High" cost; experiment E11 sweeps the modes to draw
// the whole band.
type PASIS struct {
	Cluster *cluster.Cluster
	Mode    PASISMode
	N, T    int
	// inner delegates per mode.
	cloud *CloudAES
	pots  *POTSHARDS
	code  *rs.Code
	lens  map[string]int
}

// NewPASIS builds a PASIS instance fixed to one mode (one per-object
// policy; construct several for mixed workloads).
func NewPASIS(c *cluster.Cluster, mode PASISMode, n, t int) (*PASIS, error) {
	p := &PASIS{Cluster: c, Mode: mode, N: n, T: t, lens: make(map[string]int)}
	var err error
	switch mode {
	case PASISReplication:
		if n > c.Size() {
			return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
		}
	case PASISErasure:
		p.code, err = rs.New(t, n-t)
		if err != nil {
			return nil, err
		}
		if n > c.Size() {
			return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
		}
	case PASISEncryptEC:
		p.cloud, err = NewCloudAES(c, t, n-t)
		if err != nil {
			return nil, err
		}
	case PASISSecretShare:
		p.pots, err = NewPOTSHARDS(c, n, t)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("systems: unknown PASIS mode %d", mode)
	}
	return p, nil
}

// Name implements Archive.
func (p *PASIS) Name() string { return "PASIS" }

// Store implements Archive.
func (p *PASIS) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	switch p.Mode {
	case PASISReplication:
		shards := make([][]byte, p.N)
		for i := range shards {
			shards[i] = data
		}
		if err := putShards(p.Cluster, object, shards); err != nil {
			return nil, err
		}
		p.lens[object] = len(data)
	case PASISErasure:
		shards, err := p.code.Encode(data)
		if err != nil {
			return nil, err
		}
		if err := putShards(p.Cluster, object, shards); err != nil {
			return nil, err
		}
		p.lens[object] = len(data)
	case PASISEncryptEC:
		if _, err := p.cloud.Store(object, data, rnd); err != nil {
			return nil, err
		}
	case PASISSecretShare:
		if _, err := p.pots.Store(object, data, rnd); err != nil {
			return nil, err
		}
	}
	return &Ref{System: p.Name(), Object: object, PlainLen: len(data)}, nil
}

// Retrieve implements Archive.
func (p *PASIS) Retrieve(ref *Ref) ([]byte, error) {
	switch p.Mode {
	case PASISReplication:
		// One good replica suffices; the degraded read retries flaky
		// providers before falling back to the next.
		shards, err := getShardsDegraded(p.Cluster, ref.Object, p.N, 1)
		if err != nil {
			return nil, err
		}
		for _, sh := range shards {
			if sh != nil {
				return sh, nil
			}
		}
		return nil, fmt.Errorf("%w: no replica reachable", ErrRetrieval)
	case PASISErasure:
		shards, err := getShardsDegraded(p.Cluster, ref.Object, p.code.TotalShards(), p.code.DataShards())
		if err != nil {
			return nil, err
		}
		if err := p.code.Reconstruct(shards); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
		}
		return p.code.Join(shards, p.lens[ref.Object])
	case PASISEncryptEC:
		return p.cloud.Retrieve(&Ref{System: p.cloud.Name(), Object: ref.Object, PlainLen: ref.PlainLen})
	case PASISSecretShare:
		return p.pots.Retrieve(&Ref{System: p.pots.Name(), Object: ref.Object, PlainLen: ref.PlainLen})
	}
	return nil, fmt.Errorf("systems: unknown PASIS mode %d", p.Mode)
}

// Renew implements Archive.
func (p *PASIS) Renew(ref *Ref, rnd io.Reader) error {
	return fmt.Errorf("%w: PASIS leaves renewal policy to the user", ErrNotSupported)
}

// Classify implements Archive: the at-rest class depends on the chosen
// mode — Table 1's "ITS (sometimes)" row, made concrete.
func (p *PASIS) Classify() sec.Profile {
	rest := sec.None
	switch p.Mode {
	case PASISEncryptEC:
		rest = sec.Computational
	case PASISSecretShare:
		rest = sec.IT
	}
	return sec.Profile{
		System:       p.Name(),
		TransitClass: sec.Computational,
		RestClass:    rest,
	}
}

// Breach implements Archive, per mode.
func (p *PASIS) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	switch p.Mode {
	case PASISReplication:
		if adv.MaxAnyEpochShards(ref.Object) >= 1 {
			h := adv.Harvest(ref.Object)
			return BreachResult{Violated: true, Full: true, Recovered: h[0].Shard.Data,
				Reason: "replication stores plaintext; one node sufficed"}
		}
		return BreachResult{Reason: "no replica harvested"}
	case PASISErasure:
		have := adv.MaxAnyEpochShards(ref.Object)
		if have >= p.code.DataShards() {
			return BreachResult{Violated: true, Full: true,
				Reason: "erasure coding is not encryption: k shards decode publicly"}
		}
		if have >= 1 {
			return BreachResult{Violated: true, Full: false,
				Reason: "systematic erasure shards ARE plaintext fragments"}
		}
		return BreachResult{Reason: "no shards harvested"}
	case PASISEncryptEC:
		return p.cloud.Breach(adv, &Ref{Object: ref.Object, PlainLen: ref.PlainLen}, breaks, epoch)
	case PASISSecretShare:
		return p.pots.Breach(adv, &Ref{Object: ref.Object, PlainLen: ref.PlainLen}, breaks, epoch)
	}
	return BreachResult{Reason: "unknown mode"}
}

// ModeOverhead returns the storage overhead the mode implies, for the
// E11 sweep: replication n×, erasure n/t×, encrypt+EC n/t×, sharing n×.
func (p *PASIS) ModeOverhead() float64 {
	switch p.Mode {
	case PASISReplication, PASISSecretShare:
		return float64(p.N)
	default:
		return float64(p.N) / float64(p.T)
	}
}
