package systems

import (
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/sec"
	"securearchive/internal/shamir"
)

// POTSHARDS (Storer et al., ToS '09) was the first full archival system
// built on Shamir's secret sharing: each share goes to an administratively
// independent provider, giving information-theoretic confidentiality at
// rest with no keys to manage, at replication-grade storage cost. Its
// published design does NOT proactively refresh shares — the drawback the
// paper leads with: "given enough time, we must entertain the possibility
// that a mobile adversary eventually steals a threshold number of shares."
// Breach implements exactly that: harvested shares from ANY epochs
// combine, because the polynomial never changes.
type POTSHARDS struct {
	Cluster *cluster.Cluster
	N, T    int
}

// NewPOTSHARDS builds the system with a (t, n) sharing, one share per node.
func NewPOTSHARDS(c *cluster.Cluster, n, t int) (*POTSHARDS, error) {
	if n > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("systems: invalid threshold %d of %d", t, n)
	}
	return &POTSHARDS{Cluster: c, N: n, T: t}, nil
}

// Name implements Archive.
func (s *POTSHARDS) Name() string { return "POTSHARDS" }

// Store implements Archive.
func (s *POTSHARDS) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	shares, err := shamir.Split(data, s.N, s.T, rnd)
	if err != nil {
		return nil, err
	}
	shards := make([][]byte, s.N)
	for i, sh := range shares {
		shards[i] = sh.Payload
	}
	if err := putShards(s.Cluster, object, shards); err != nil {
		return nil, err
	}
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// Retrieve implements Archive: any t online providers suffice, and the
// degraded read stops probing once it has them.
func (s *POTSHARDS) Retrieve(ref *Ref) ([]byte, error) {
	shards, err := getShardsDegraded(s.Cluster, ref.Object, s.N, s.T)
	if err != nil {
		return nil, err
	}
	shares := make([]shamir.Share, 0, s.T)
	for i, data := range shards {
		if data == nil {
			continue
		}
		shares = append(shares, shamir.Share{X: byte(i + 1), Threshold: byte(s.T), Payload: data})
		if len(shares) == s.T {
			break
		}
	}
	if len(shares) < s.T {
		return nil, fmt.Errorf("%w: %d/%d shares reachable", ErrRetrieval, len(shares), s.T)
	}
	out, err := shamir.Combine(shares)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	return out, nil
}

// RetrieveRobust reads the object even when up to maxErrors providers
// return CORRUPTED shares — POTSHARDS has no share commitments, so it
// leans on the Reed-Solomon structure of Shamir shares (McEliece–
// Sarwate) and Berlekamp–Welch decoding instead. Requires
// n ≥ t + 2·maxErrors reachable providers.
func (s *POTSHARDS) RetrieveRobust(ref *Ref, maxErrors int) ([]byte, error) {
	shards := getShards(s.Cluster, ref.Object, s.N)
	shares := make([]shamir.Share, 0, s.N)
	for i, data := range shards {
		if data == nil {
			continue
		}
		shares = append(shares, shamir.Share{X: byte(i + 1), Threshold: byte(s.T), Payload: data})
	}
	out, err := shamir.CombineRobust(shares, maxErrors)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	return out, nil
}

// Renew implements Archive: POTSHARDS as published has no share renewal.
func (s *POTSHARDS) Renew(ref *Ref, rnd io.Reader) error {
	return fmt.Errorf("%w: POTSHARDS does not renew shares", ErrNotSupported)
}

// Classify implements Archive.
func (s *POTSHARDS) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.Computational, // provider links are TLS
		RestClass:    sec.IT,
	}
}

// Breach implements Archive: shares are static, so harvests from
// different epochs combine freely; breaks are irrelevant.
func (s *POTSHARDS) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	shares := harvestedShamir(adv, ref.Object, s.T, false)
	if len(shares) < s.T {
		return BreachResult{Reason: fmt.Sprintf("%d/%d shares harvested", len(shares), s.T)}
	}
	pt, err := shamir.Combine(shares[:s.T])
	if err != nil {
		return BreachResult{Violated: true, Reason: "threshold met but shares inconsistent"}
	}
	return BreachResult{Violated: true, Full: true, Recovered: pt,
		Reason: "mobile adversary accumulated a threshold of static shares"}
}
