package systems

import (
	"bytes"
	"crypto/rand"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
)

func TestVSRRepairRebuildsLostProvider(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, err := vsr.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Provider 2 loses its disk.
	if err := c.Delete(2, cluster.ShardKey{Object: "obj", Index: 2}); err != nil {
		t.Fatal(err)
	}
	if err := vsr.Repair(ref, 2, rand.Reader); err != nil {
		t.Fatal(err)
	}
	// The repaired shard participates in retrieval: force nodes 0,1 off
	// so node 2 is needed.
	c.SetOnline(0, false)
	c.SetOnline(1, false)
	got, err := vsr.Retrieve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("repaired shard inconsistent")
	}
}

func TestVSRRepairAfterRenewal(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, _ := vsr.Store("obj", payload, rand.Reader)
	for i := 0; i < 3; i++ {
		c.AdvanceEpoch()
		if err := vsr.Renew(ref, rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete(5, cluster.ShardKey{Object: "obj", Index: 5})
	if err := vsr.Repair(ref, 5, rand.Reader); err != nil {
		t.Fatal(err)
	}
	c.SetOnline(0, false)
	c.SetOnline(1, false)
	c.SetOnline(2, false)
	got, err := vsr.Retrieve(ref)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-renewal repair failed: %v", err)
	}
}

func TestVSRRepairSkipsCorruptHelpers(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, _ := vsr.Store("obj", payload, rand.Reader)
	// Corrupt helper 0's shard; repair of node 5 must route around it.
	sh, _ := c.Get(0, cluster.ShardKey{Object: "obj", Index: 0})
	sh.Data[0] ^= 0xFF
	c.Put(0, cluster.ShardKey{Object: "obj", Index: 0}, sh.Data)
	if err := vsr.Repair(ref, 5, rand.Reader); err != nil {
		t.Fatal(err)
	}
	c.SetOnline(0, false)
	c.SetOnline(1, false)
	c.SetOnline(2, false)
	got, err := vsr.Retrieve(ref)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("repair used a corrupt helper: %v", err)
	}
}

func TestVSRRepairValidation(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, _ := vsr.Store("obj", payload, rand.Reader)
	if err := vsr.Repair(ref, 99, rand.Reader); err == nil {
		t.Fatal("bad provider index accepted")
	}
	if err := vsr.Repair(&Ref{Object: "ghost"}, 0, rand.Reader); err == nil {
		t.Fatal("unknown object accepted")
	}
}

// TestPOTSHARDSRobustRetrieve: a malicious provider returns garbage;
// POTSHARDS has no commitments, so Berlekamp–Welch decoding carries it.
func TestPOTSHARDSRobustRetrieve(t *testing.T) {
	c := cluster.New(8, nil)
	pot, _ := NewPOTSHARDS(c, 6, 2) // n=6, t=2: corrects up to 2 errors
	ref, err := pot.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Two providers go malicious.
	for _, i := range []int{1, 4} {
		sh, _ := c.Get(i, cluster.ShardKey{Object: "obj", Index: i})
		for j := range sh.Data {
			sh.Data[j] ^= byte(j + 17)
		}
		c.Put(i, cluster.ShardKey{Object: "obj", Index: i}, sh.Data)
	}
	got, err := pot.RetrieveRobust(ref, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("robust retrieval failed against 2 malicious providers")
	}
	// Plain retrieval would have been poisoned if it picked a bad share
	// (it reads the first t reachable: provider 1 is in that set).
	plain, err := pot.Retrieve(ref)
	if err == nil && bytes.Equal(plain, payload) {
		t.Fatal("plain retrieval unexpectedly dodged the malicious provider (test setup wrong)")
	}
}

func TestHasDPSSResize(t *testing.T) {
	c := cluster.New(8, nil)
	h, _ := NewHasDPSS(c, 4, 2, group.Test())
	key := []byte("a 28-byte master key secret!")
	ref, err := h.Store("k", key, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the committee to (4, 7).
	if err := h.Resize(ref, 7, 4, rand.Reader); err != nil {
		t.Fatal(err)
	}
	got, err := h.Retrieve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("key lost in resize")
	}
	// Shrink back to (2, 3): departed members' shards must be gone.
	if err := h.Resize(ref, 3, 2, rand.Reader); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 7; i++ {
		if _, err := c.Get(i, cluster.ShardKey{Object: "k", Index: i}); err == nil {
			t.Fatalf("departed member %d still holds a shard", i)
		}
	}
	got, err = h.Retrieve(ref)
	if err != nil || !bytes.Equal(got, key) {
		t.Fatalf("key lost in shrink: %v", err)
	}
	// Ledger recorded store + 2 resizes and still replays.
	if len(h.Ledger) != 3 {
		t.Fatalf("ledger has %d blocks, want 3", len(h.Ledger))
	}
	if err := h.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

func TestHasDPSSResizeThenRenew(t *testing.T) {
	c := cluster.New(8, nil)
	h, _ := NewHasDPSS(c, 4, 2, group.Test())
	key := []byte("key material for rotation...")
	ref, _ := h.Store("k", key, rand.Reader)
	if err := h.Resize(ref, 6, 3, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := h.Renew(ref, rand.Reader); err != nil {
		t.Fatal(err)
	}
	got, err := h.Retrieve(ref)
	if err != nil || !bytes.Equal(got, key) {
		t.Fatalf("resize+renew lost the key: %v", err)
	}
}

func TestHasDPSSResizeTooManyNodes(t *testing.T) {
	c := cluster.New(4, nil)
	h, _ := NewHasDPSS(c, 4, 2, group.Test())
	ref, _ := h.Store("k", []byte("kkkk"), rand.Reader)
	if err := h.Resize(ref, 9, 4, rand.Reader); err == nil {
		t.Fatal("resize beyond cluster accepted")
	}
}
