// Package systems implements a miniature but end-to-end version of every
// archival system in the paper's Table 1, on the shared cluster substrate:
//
//	ArchiveSafeLT — cascade ciphers + erasure-coded dispersal
//	AONT-RS       — all-or-nothing transform + erasure-coded dispersal
//	HasDPSS       — proactively shared keys with a verifiable audit chain
//	LINCOS        — secret sharing at rest, OTP/QKD in transit,
//	                commitment-based timestamping
//	PASIS         — configurable encoding (replication / EC / sharing)
//	POTSHARDS     — plain Shamir across independent providers, no renewal
//	VSR Archive   — Shamir plus verifiable share redistribution/renewal
//	CloudAES      — the AWS/Azure/GCP baseline: AES-GCM + erasure coding
//
// Every system implements the same Archive interface: Store/Retrieve
// against the cluster, a static security classification (Table 1's transit
// and at-rest columns), and — the part that makes Table 1 *measured*
// rather than asserted — a Breach method that plays the paper's adversary:
// given the mobile adversary's harvest and the cryptanalytic break clock,
// what does the attacker actually recover? Experiments E2 and E4 run on
// these implementations.
package systems

import (
	"errors"
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/sec"
	"securearchive/internal/shamir"
)

// Errors returned across systems.
var (
	ErrTooFewNodes  = errors.New("systems: cluster too small for this system")
	ErrUnknownRef   = errors.New("systems: unknown object reference")
	ErrRetrieval    = errors.New("systems: could not retrieve enough shards")
	ErrNotSupported = errors.New("systems: operation not supported by this system")
)

// Ref identifies a stored object.
type Ref struct {
	System   string
	Object   string
	PlainLen int
}

// BreachResult reports what an attacker extracted from its harvest.
type BreachResult struct {
	// Violated is true when ANY confidentiality was lost.
	Violated bool
	// Full is true when the complete plaintext was recovered.
	Full bool
	// Recovered holds recovered plaintext when Full.
	Recovered []byte
	// Reason explains the outcome for reports.
	Reason string
}

// Archive is the interface every Table 1 system implements.
type Archive interface {
	// Name returns the Table 1 row label.
	Name() string
	// Store archives data under the given object ID.
	Store(object string, data []byte, rnd io.Reader) (*Ref, error)
	// Retrieve reads an object back (exercising availability).
	Retrieve(ref *Ref) ([]byte, error)
	// Renew refreshes at-rest material where the design supports it
	// (share renewal, layer wrapping); ErrNotSupported otherwise.
	Renew(ref *Ref, rnd io.Reader) error
	// Classify returns the system's Table 1 classification. Measured
	// storage cost is filled in by the caller from cluster accounting.
	Classify() sec.Profile
	// Breach plays the adversary: given the harvest and break clock at
	// the given epoch, attempt to violate the object's confidentiality.
	Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult
}

// StorageCost measures bytes-at-rest per plaintext byte for a stored ref.
func StorageCost(c *cluster.Cluster, ref *Ref) float64 {
	if ref.PlainLen == 0 {
		return 0
	}
	return float64(c.ObjectBytes(ref.Object)) / float64(ref.PlainLen)
}

// --- shared shard-placement helpers ---

// putShards writes shards round-robin, shard i to node i (the paper's
// one-shard-per-independent-provider placement).
func putShards(c *cluster.Cluster, object string, shards [][]byte) error {
	if len(shards) > c.Size() {
		return fmt.Errorf("%w: %d shards for %d nodes", ErrTooFewNodes, len(shards), c.Size())
	}
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		if err := c.Put(i, cluster.ShardKey{Object: object, Index: i}, sh); err != nil {
			return err
		}
	}
	return nil
}

// getShards fetches the full stripe (nil for unavailable shards),
// indexed by shard number, retrying transient faults per node. A
// best-effort read: callers that tolerate holes (robust decoders,
// breach analysis) take whatever arrived.
func getShards(c *cluster.Cluster, object string, total int) [][]byte {
	return c.FetchStripe(object, total, total, cluster.DefaultRetry, nil).Shards
}

// getShardsDegraded is the PASIS/POTSHARDS-style k-of-n read shared by
// the survivable systems: fan out the decoder's minimum plus speculative
// probes, retry transients with bounded backoff, fall back to remaining
// providers, and stop once want shards are in hand. When fewer than want
// shards arrive the error reports the shortfall and the per-node causes
// ("insufficient shards: got 2, want 3 (node 4: corrupt, node 5:
// down)") — callers must not feed the partial stripe to a decoder.
func getShardsDegraded(c *cluster.Cluster, object string, total, want int) ([][]byte, error) {
	res := c.FetchStripe(object, total, want, cluster.DefaultRetry, nil)
	if res.Fetched < want {
		return res.Shards, insufficientShards(res, want)
	}
	return res.Shards, nil
}

// insufficientShards wraps ErrRetrieval with got/want and per-node
// attribution from a stripe read that ended below threshold.
func insufficientShards(res *cluster.StripeResult, want int) error {
	if s := res.FailureSummary(); s != "" {
		return fmt.Errorf("%w: insufficient shards: got %d, want %d (%s)", ErrRetrieval, res.Fetched, want, s)
	}
	return fmt.Errorf("%w: insufficient shards: got %d, want %d", ErrRetrieval, res.Fetched, want)
}

// harvestedShamir assembles shamir.Shares from the adversary's harvest of
// one object: sameEpoch selects whether only shards written in a single
// epoch may be combined (renewing systems) or any epochs mix (static
// systems). Returns the largest usable share set.
func harvestedShamir(adv *adversary.Mobile, object string, threshold int, sameEpoch bool) []shamir.Share {
	if sameEpoch {
		best := []shamir.Share(nil)
		for _, byIdx := range adv.DistinctShards(object) {
			if len(byIdx) < len(best) || len(byIdx) == 0 {
				continue
			}
			cur := make([]shamir.Share, 0, len(byIdx))
			for idx, data := range byIdx {
				cur = append(cur, shamir.Share{X: byte(idx + 1), Threshold: byte(threshold), Payload: data})
			}
			if len(cur) > len(best) {
				best = cur
			}
		}
		return best
	}
	// Any epoch: latest version of each index.
	latest := make(map[int]cluster.Shard)
	for _, h := range adv.Harvest(object) {
		prev, ok := latest[h.Shard.Key.Index]
		if !ok || h.Shard.Epoch > prev.Epoch {
			latest[h.Shard.Key.Index] = h.Shard
		}
	}
	out := make([]shamir.Share, 0, len(latest))
	for idx, sh := range latest {
		out = append(out, shamir.Share{X: byte(idx + 1), Threshold: byte(threshold), Payload: sh.Data})
	}
	return out
}
