package systems

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/sec"
)

var payload = []byte("a long-lived archival record: census data, medical imagery, treaties")

// allSystems builds one instance of every Table 1 system on a fresh
// 8-node cluster.
func allSystems(t *testing.T) (map[string]Archive, *cluster.Cluster) {
	t.Helper()
	c := cluster.New(8, nil)
	out := make(map[string]Archive)

	cloud, err := NewCloudAES(c, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["cloud"] = cloud

	asl, err := NewArchiveSafeLT(c, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["archivesafe"] = asl

	ars, err := NewAONTRS(c, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	out["aontrs"] = ars

	pot, err := NewPOTSHARDS(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["potshards"] = pot

	vsr, err := NewVSRArchive(c, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["vsr"] = vsr

	lin, err := NewLINCOS(c, 6, 3, group.Test(), 1)
	if err != nil {
		t.Fatal(err)
	}
	out["lincos"] = lin

	pas, err := NewPASIS(c, PASISSecretShare, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["pasis"] = pas

	has, err := NewHasDPSS(c, 6, 3, group.Test())
	if err != nil {
		t.Fatal(err)
	}
	out["hasdpss"] = has

	return out, c
}

func dataFor(name string) []byte {
	if name == "hasdpss" {
		return []byte("a 28-byte master key secret!") // key-sized
	}
	return payload
}

func TestAllSystemsRoundTrip(t *testing.T) {
	systems, _ := allSystems(t)
	for name, sys := range systems {
		data := dataFor(name)
		ref, err := sys.Store("obj-"+name, data, rand.Reader)
		if err != nil {
			t.Fatalf("%s store: %v", name, err)
		}
		got, err := sys.Retrieve(ref)
		if err != nil {
			t.Fatalf("%s retrieve: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// TestAvailabilityUnderNodeFailure: every system must survive the failure
// of nodes up to its redundancy.
func TestAvailabilityUnderNodeFailure(t *testing.T) {
	cases := []struct {
		name      string
		downNodes []int
	}{
		{"cloud", []int{0, 5}}, // RS(4,2): 2 of 6 shards lost
		{"archivesafe", []int{1, 4}},
		{"aontrs", []int{0, 1}},       // 4-of-6
		{"potshards", []int{3, 4, 5}}, // t=3 of 6: 3 may fail
		{"vsr", []int{0, 1, 2}},
		{"lincos", []int{1, 3, 5}},
		{"pasis", []int{0, 2, 4}},
		{"hasdpss", []int{0, 1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			systems, c := allSystems(t)
			sys := systems[tc.name]
			data := dataFor(tc.name)
			ref, err := sys.Store("obj", data, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range tc.downNodes {
				if err := c.SetOnline(n, false); err != nil {
					t.Fatal(err)
				}
			}
			got, err := sys.Retrieve(ref)
			if err != nil {
				t.Fatalf("retrieve with %v down: %v", tc.downNodes, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("mismatch after failures")
			}
		})
	}
}

// TestTable1Classifications pins every system's transit/rest classes to
// the paper's Table 1.
func TestTable1Classifications(t *testing.T) {
	systems, _ := allSystems(t)
	want := map[string]struct{ transit, rest sec.Class }{
		"archivesafe": {sec.Computational, sec.Computational},
		"aontrs":      {sec.Computational, sec.Computational},
		"hasdpss":     {sec.Computational, sec.IT},
		"lincos":      {sec.IT, sec.IT},
		"potshards":   {sec.Computational, sec.IT},
		"vsr":         {sec.Computational, sec.IT},
		"cloud":       {sec.Computational, sec.Computational},
	}
	for name, w := range want {
		p := systems[name].Classify()
		if p.TransitClass != w.transit {
			t.Errorf("%s transit = %s, want %s", name, p.TransitClass, w.transit)
		}
		if p.RestClass != w.rest {
			t.Errorf("%s rest = %s, want %s", name, p.RestClass, w.rest)
		}
	}
	// PASIS depends on mode: Table 1's "ITS (sometimes)".
	c := cluster.New(8, nil)
	ss, _ := NewPASIS(c, PASISSecretShare, 6, 3)
	if ss.Classify().RestClass != sec.IT {
		t.Error("PASIS secret-share mode must be ITS at rest")
	}
	enc, _ := NewPASIS(c, PASISEncryptEC, 6, 3)
	if enc.Classify().RestClass != sec.Computational {
		t.Error("PASIS encrypt mode must be computational at rest")
	}
	rep, _ := NewPASIS(c, PASISReplication, 3, 1)
	if rep.Classify().RestClass != sec.None {
		t.Error("PASIS replication mode has no confidentiality")
	}
}

// TestTable1StorageCosts pins the cost column: Low (≈n/k ≤ 2) for
// cascade/AONT/cloud, High (≈n) for the secret-sharing systems.
func TestTable1StorageCosts(t *testing.T) {
	systems, c := allSystems(t)
	lowCost := []string{"cloud", "archivesafe", "aontrs"}
	highCost := []string{"potshards", "vsr", "lincos", "pasis"}
	// Archive-sized objects: AONT's constant key/canary blocks and cascade
	// nonces amortise away, which is the regime Table 1 describes.
	big := make([]byte, 64<<10)
	rand.Read(big)
	refs := map[string]*Ref{}
	for name, sys := range systems {
		data := big
		if name == "hasdpss" {
			data = dataFor(name)
		}
		ref, err := sys.Store("cost-"+name, data, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	for _, name := range lowCost {
		oh := StorageCost(c, refs[name])
		if sec.BandFromOverhead(oh) != sec.CostLow {
			t.Errorf("%s overhead %.2f classified %s, want Low", name, oh, sec.BandFromOverhead(oh))
		}
	}
	for _, name := range highCost {
		oh := StorageCost(c, refs[name])
		if sec.BandFromOverhead(oh) != sec.CostHigh {
			t.Errorf("%s overhead %.2f classified %s, want High", name, oh, sec.BandFromOverhead(oh))
		}
	}
}

func TestRenewSupport(t *testing.T) {
	systems, _ := allSystems(t)
	renewable := []string{"cloud", "archivesafe", "aontrs", "vsr", "lincos", "hasdpss"}
	for _, name := range renewable {
		sys := systems[name]
		data := dataFor(name)
		ref, err := sys.Store("rn-"+name, data, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Renew(ref, rand.Reader); err != nil {
			t.Fatalf("%s renew: %v", name, err)
		}
		got, err := sys.Retrieve(ref)
		if err != nil {
			t.Fatalf("%s retrieve after renew: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: renew corrupted data", name)
		}
	}
	for _, name := range []string{"potshards", "pasis"} {
		sys := systems[name]
		ref, _ := sys.Store("nr-"+name, dataFor(name), rand.Reader)
		if err := sys.Renew(ref, rand.Reader); !errors.Is(err, ErrNotSupported) {
			t.Fatalf("%s renew should be unsupported: %v", name, err)
		}
	}
}

func TestVSRVerifiedRetrievalSkipsCorruptProvider(t *testing.T) {
	c := cluster.New(8, nil)
	vsr, _ := NewVSRArchive(c, 6, 3)
	ref, err := vsr.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 returns garbage.
	sh, _ := c.Get(0, cluster.ShardKey{Object: "obj", Index: 0})
	sh.Data[0] ^= 0xFF
	c.Put(0, cluster.ShardKey{Object: "obj", Index: 0}, sh.Data)
	got, err := vsr.Retrieve(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("corrupt provider poisoned retrieval")
	}
}

func TestHasDPSSLedger(t *testing.T) {
	c := cluster.New(8, nil)
	h, _ := NewHasDPSS(c, 6, 3, group.Test())
	ref, err := h.Store("k1", []byte("key material"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Renew(ref, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if len(h.Ledger) != 2 {
		t.Fatalf("ledger has %d blocks, want 2", len(h.Ledger))
	}
	if err := h.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
	h.Ledger[0].Op = "tampered"
	if err := h.VerifyLedger(); err == nil {
		t.Fatal("ledger tampering undetected")
	}
}

func TestHasDPSSRejectsBulkData(t *testing.T) {
	c := cluster.New(8, nil)
	h, _ := NewHasDPSS(c, 6, 3, group.Test())
	if _, err := h.Store("big", make([]byte, 1000), rand.Reader); err == nil {
		t.Fatal("bulk data accepted by key-management system")
	}
}

func TestLINCOSIntegrityChain(t *testing.T) {
	c := cluster.New(8, nil)
	lin, err := NewLINCOS(c, 6, 3, group.Test(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lin.Store("obj", payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	chain := lin.Chain("obj")
	if chain == nil || chain.Len() != 1 {
		t.Fatal("no timestamp chain created")
	}
	if err := lin.Renew(ref, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 2 {
		t.Fatalf("chain length %d after renew, want 2", chain.Len())
	}
	if err := chain.Verify(100, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPASISModeOverheads(t *testing.T) {
	c := cluster.New(8, nil)
	rep, _ := NewPASIS(c, PASISReplication, 4, 1)
	if rep.ModeOverhead() != 4 {
		t.Fatalf("replication overhead %v", rep.ModeOverhead())
	}
	ec, _ := NewPASIS(c, PASISErasure, 6, 4)
	if ec.ModeOverhead() != 1.5 {
		t.Fatalf("erasure overhead %v", ec.ModeOverhead())
	}
	ss, _ := NewPASIS(c, PASISSecretShare, 6, 3)
	if ss.ModeOverhead() != 6 {
		t.Fatalf("sharing overhead %v", ss.ModeOverhead())
	}
}

func TestPASISAllModesRoundTrip(t *testing.T) {
	for _, mode := range []PASISMode{PASISReplication, PASISErasure, PASISEncryptEC, PASISSecretShare} {
		c := cluster.New(8, nil)
		p, err := NewPASIS(c, mode, 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		ref, err := p.Store("obj", payload, rand.Reader)
		if err != nil {
			t.Fatalf("%s store: %v", mode, err)
		}
		got, err := p.Retrieve(ref)
		if err != nil {
			t.Fatalf("%s retrieve: %v", mode, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: mismatch", mode)
		}
	}
}

func TestTooFewNodesRejected(t *testing.T) {
	c := cluster.New(3, nil)
	if _, err := NewPOTSHARDS(c, 6, 3); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("potshards: %v", err)
	}
	if _, err := NewCloudAES(c, 4, 2); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("cloud: %v", err)
	}
}
