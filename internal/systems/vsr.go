package systems

import (
	"crypto/sha256"
	"fmt"
	"io"

	"securearchive/internal/adversary"
	"securearchive/internal/cluster"
	"securearchive/internal/sec"
	"securearchive/internal/shamir"
)

// VSRArchive models Wong, Wang & Wing's verifiable secret redistribution
// archive: Shamir sharing at rest plus a renewal protocol that
// re-randomises every share, with commitments that let holders verify
// what they receive. Against the mobile adversary the renewal is the
// entire defence: shares harvested in different epochs lie on different
// polynomials and cannot be combined — which Breach demonstrates by
// insisting on same-epoch shards. The cost, per §3.2, is all-to-all
// renewal traffic, metered in RenewTraffic.
type VSRArchive struct {
	Cluster *cluster.Cluster
	N, T    int
	// RenewTraffic accumulates bytes a real deployment would move during
	// renewals (zero-share dealings + commitment broadcasts).
	RenewTraffic int64
	// commitments[object][i] is the hash commitment to node i's current
	// share, refreshed at each renewal — the "verifiable" part.
	commitments map[string][][sha256.Size]byte
}

// NewVSRArchive builds the system with a (t, n) sharing.
func NewVSRArchive(c *cluster.Cluster, n, t int) (*VSRArchive, error) {
	if n > c.Size() {
		return nil, fmt.Errorf("%w: need %d nodes", ErrTooFewNodes, n)
	}
	if t < 1 || t > n {
		return nil, fmt.Errorf("systems: invalid threshold %d of %d", t, n)
	}
	return &VSRArchive{Cluster: c, N: n, T: t, commitments: make(map[string][][sha256.Size]byte)}, nil
}

// Name implements Archive.
func (s *VSRArchive) Name() string { return "VSR Archive" }

// Store implements Archive.
func (s *VSRArchive) Store(object string, data []byte, rnd io.Reader) (*Ref, error) {
	shares, err := shamir.Split(data, s.N, s.T, rnd)
	if err != nil {
		return nil, err
	}
	shards := make([][]byte, s.N)
	comms := make([][sha256.Size]byte, s.N)
	for i, sh := range shares {
		shards[i] = sh.Payload
		comms[i] = sha256.Sum256(sh.Payload)
	}
	if err := putShards(s.Cluster, object, shards); err != nil {
		return nil, err
	}
	s.commitments[object] = comms
	return &Ref{System: s.Name(), Object: object, PlainLen: len(data)}, nil
}

// Retrieve implements Archive, verifying each fetched share against its
// commitment before combining — a corrupt provider is identified during
// the degraded read itself, and the fetch moves on to another provider
// rather than failing the stripe.
func (s *VSRArchive) Retrieve(ref *Ref) ([]byte, error) {
	comms, ok := s.commitments[ref.Object]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	res := s.Cluster.FetchStripe(ref.Object, s.N, s.T, cluster.DefaultRetry,
		func(i int, data []byte) bool { return sha256.Sum256(data) == comms[i] })
	if res.Fetched < s.T {
		return nil, insufficientShards(res, s.T)
	}
	shares := make([]shamir.Share, 0, s.T)
	for i, data := range res.Shards {
		if data == nil {
			continue
		}
		shares = append(shares, shamir.Share{X: byte(i + 1), Threshold: byte(s.T), Payload: data})
		if len(shares) == s.T {
			break
		}
	}
	out, err := shamir.Combine(shares)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRetrieval, err)
	}
	return out, nil
}

// Renew implements Archive: a Herzberg zero-sharing refresh executed
// against the stored shards — no reconstruction, no plaintext exposure.
// Every node's share is re-randomised and its commitment republished;
// the cluster epoch-stamps the rewritten shards, which is what defeats
// cross-epoch harvest mixing.
func (s *VSRArchive) Renew(ref *Ref, rnd io.Reader) error {
	comms, ok := s.commitments[ref.Object]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	zero := make([]byte, ref.PlainLen)
	deal, err := shamir.Split(zero, s.N, s.T, rnd)
	if err != nil {
		return err
	}
	for i := 0; i < s.N; i++ {
		key := cluster.ShardKey{Object: ref.Object, Index: i}
		sh, err := s.Cluster.Get(i, key)
		if err != nil {
			return fmt.Errorf("systems: renewal fetch node %d: %w", i, err)
		}
		for k := range sh.Data {
			sh.Data[k] ^= deal[i].Payload[k]
		}
		if err := s.Cluster.Put(i, key, sh.Data); err != nil {
			return err
		}
		comms[i] = sha256.Sum256(sh.Data)
		s.RenewTraffic += int64(len(sh.Data)) + sha256.Size
	}
	// All-to-all dealing traffic of a real (non-simulated) execution.
	s.RenewTraffic += int64(s.N*(s.N-1)) * int64(ref.PlainLen)
	return nil
}

// Repair rebuilds a lost or corrupted provider's share from t healthy
// providers and re-publishes its commitment. (The deployed protocol
// blinds the helpers' contributions — see pss.RecoverShare for the
// blinded variant; at the system layer the observable effect is
// identical: the provider ends up with a share consistent with the
// current polynomial.)
func (s *VSRArchive) Repair(ref *Ref, lost int, rnd io.Reader) error {
	comms, ok := s.commitments[ref.Object]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRef, ref.Object)
	}
	if lost < 0 || lost >= s.N {
		return fmt.Errorf("systems: no provider %d", lost)
	}
	helpers := make([]shamir.Share, 0, s.T)
	for i := 0; i < s.N && len(helpers) < s.T; i++ {
		if i == lost {
			continue
		}
		sh, err := s.Cluster.Get(i, cluster.ShardKey{Object: ref.Object, Index: i})
		if err != nil {
			continue
		}
		if sha256.Sum256(sh.Data) != comms[i] {
			continue
		}
		helpers = append(helpers, shamir.Share{X: byte(i + 1), Threshold: byte(s.T), Payload: sh.Data})
	}
	if len(helpers) < s.T {
		return fmt.Errorf("%w: %d/%d verified helpers", ErrRetrieval, len(helpers), s.T)
	}
	payload, err := shamir.CombineAt(helpers, byte(lost+1))
	if err != nil {
		return fmt.Errorf("systems: repair interpolation: %w", err)
	}
	if err := s.Cluster.Put(lost, cluster.ShardKey{Object: ref.Object, Index: lost}, payload); err != nil {
		return err
	}
	comms[lost] = sha256.Sum256(payload)
	s.RenewTraffic += int64(s.T*(ref.PlainLen+2) + ref.PlainLen)
	return nil
}

// Classify implements Archive.
func (s *VSRArchive) Classify() sec.Profile {
	return sec.Profile{
		System:       s.Name(),
		TransitClass: sec.Computational,
		RestClass:    sec.IT,
	}
}

// Breach implements Archive: only same-write-epoch shares combine.
func (s *VSRArchive) Breach(adv *adversary.Mobile, ref *Ref, breaks adversary.Breaks, epoch int) BreachResult {
	shares := harvestedShamir(adv, ref.Object, s.T, true)
	if len(shares) < s.T {
		return BreachResult{Reason: fmt.Sprintf("best same-epoch haul is %d/%d shares", len(shares), s.T)}
	}
	pt, err := shamir.Combine(shares[:s.T])
	if err != nil {
		return BreachResult{Violated: true, Reason: "threshold met but shares inconsistent"}
	}
	return BreachResult{Violated: true, Full: true, Recovered: pt,
		Reason: "adversary out-raced the renewal period"}
}
