package tstamp

import (
	"encoding/json"
	"fmt"

	"securearchive/internal/sig"
)

// Timestamp chains are archival artifacts themselves: the evidence must
// outlive processes and machines, so the public portion of a chain has a
// stable serialised form. The owner-held commitment opening is
// deliberately NOT serialised here — it is key material, stored and
// shared by the owner's own means (e.g. a vss sharing); ExportOpening and
// ImportOpening handle it separately and explicitly.

// wireLink is the serialised form of one link.
type wireLink struct {
	Epoch    int     `json:"epoch"`
	Mode     RefMode `json:"mode"`
	Ref      []byte  `json:"ref"`
	PrevHash []byte  `json:"prev_hash"`
	Scheme   string  `json:"scheme"`
	Public   []byte  `json:"public"`
	Sig      []byte  `json:"sig"`
}

type wireChain struct {
	Version int        `json:"version"`
	Mode    RefMode    `json:"mode"`
	Links   []wireLink `json:"links"`
}

// wireVersion is the serialisation format version.
const wireVersion = 1

// ErrBadEncoding reports a malformed serialised chain.
var ErrBadEncoding = fmt.Errorf("tstamp: malformed chain encoding")

// Marshal serialises the chain's public portion.
func (c *Chain) Marshal() ([]byte, error) {
	if len(c.Links) == 0 {
		return nil, ErrEmptyChain
	}
	w := wireChain{Version: wireVersion, Mode: c.Mode}
	for _, l := range c.Links {
		w.Links = append(w.Links, wireLink{
			Epoch:    l.Epoch,
			Mode:     l.Mode,
			Ref:      l.Ref,
			PrevHash: l.PrevHash[:],
			Scheme:   string(l.Scheme),
			Public:   l.Public,
			Sig:      l.Sig,
		})
	}
	return json.Marshal(w)
}

// Unmarshal reconstructs a chain from its serialised public portion. The
// result can Verify and Renew; VerifyData in commitment mode additionally
// needs ImportOpening.
func Unmarshal(data []byte) (*Chain, error) {
	var w wireChain
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadEncoding, w.Version)
	}
	if len(w.Links) == 0 {
		return nil, ErrEmptyChain
	}
	c := &Chain{Mode: w.Mode}
	for i, wl := range w.Links {
		if len(wl.PrevHash) != 32 {
			return nil, fmt.Errorf("%w: link %d prev hash", ErrBadEncoding, i)
		}
		l := &Link{
			Epoch:  wl.Epoch,
			Mode:   wl.Mode,
			Ref:    wl.Ref,
			Scheme: sig.Scheme(wl.Scheme),
			Public: wl.Public,
			Sig:    wl.Sig,
		}
		copy(l.PrevHash[:], wl.PrevHash)
		c.Links = append(c.Links, l)
	}
	return c, nil
}
