package tstamp

import (
	"crypto/rand"
	"errors"
	"testing"

	"securearchive/internal/sig"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	c := newHashChain(t)
	if err := c.Renew(sig.ECDSAP256, 10, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := c.Renew(sig.RSAPSS2048, 20, rand.Reader); err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 3 || rt.Mode != RefHash {
		t.Fatalf("round trip shape: len=%d mode=%d", rt.Len(), rt.Mode)
	}
	// The deserialised chain verifies, including break semantics.
	if err := rt.Verify(100, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Verify(100, sig.BreakSchedule{sig.Ed25519: 5}); !errors.Is(err, ErrLateRenewal) {
		t.Fatalf("deserialised chain lost break semantics: %v", err)
	}
	// And can be renewed further.
	if err := rt.Renew(sig.Ed25519, 30, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := rt.Verify(100, nil); err != nil {
		t.Fatal(err)
	}
	// Data verification still works in hash mode (opening-free).
	if err := rt.VerifyData(doc); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalTamperDetected(t *testing.T) {
	c := newHashChain(t)
	c.Renew(sig.ECDSAP256, 10, rand.Reader)
	blob, _ := c.Marshal()
	// Flip one byte somewhere in the middle of the payload.
	blob2 := append([]byte(nil), blob...)
	for i := len(blob2) / 2; i < len(blob2); i++ {
		if blob2[i] >= 'a' && blob2[i] < 'z' {
			blob2[i]++
			break
		}
	}
	rt, err := Unmarshal(blob2)
	if err != nil {
		return // malformed JSON/base64: also fine
	}
	if err := rt.Verify(100, nil); err == nil {
		t.Fatal("tampered serialised chain verified")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("garbage: %v", err)
	}
	if _, err := Unmarshal([]byte(`{"version":99,"links":[{}]}`)); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := Unmarshal([]byte(`{"version":1,"links":[]}`)); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Unmarshal([]byte(`{"version":1,"links":[{"prev_hash":"AAE="}]}`)); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("short hash: %v", err)
	}
}

func TestMarshalEmptyChain(t *testing.T) {
	var c Chain
	if _, err := c.Marshal(); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("empty marshal: %v", err)
	}
}
