// Package tstamp implements Haber–Stornetta timestamp chains with
// signature-scheme rotation, and the LINCOS variant that replaces hashes
// with information-theoretically hiding Pedersen commitments (§3.3).
//
// A chain protects one archival object. Link k binds (a) the object
// reference — either its SHA-256 digest or a Pedersen commitment to it —
// (b) the full serialisation of link k−1, and (c) the epoch, under a
// digital signature. When a signature scheme approaches its end of life,
// the archive appends a fresh link signed with a newer scheme; the new
// signature covers the old one, so the old link's integrity is preserved
// *provided the renewal happened before the old scheme broke*. Verify
// checks exactly that condition against a sig.BreakSchedule: the chain is
// the paper's "more nuanced computationally bounded adversary" made
// machine-checkable (experiment E7).
//
// The hash-reference mode leaks a digest of the archived data — a
// confidentiality hole under Harvest-Now-Decrypt-Later if the data is
// guessable. Commitment mode (LINCOS) publishes only a Pedersen
// commitment, which reveals nothing information-theoretically; the
// opening stays with the data owner.
package tstamp

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"securearchive/internal/commit"
	"securearchive/internal/group"
	"securearchive/internal/sig"
)

// Errors returned by this package.
var (
	ErrEmptyChain    = errors.New("tstamp: empty chain")
	ErrBrokenLink    = errors.New("tstamp: link signature invalid")
	ErrChainGap      = errors.New("tstamp: link does not cover its predecessor")
	ErrLateRenewal   = errors.New("tstamp: scheme broke before the next renewal")
	ErrEpochOrder    = errors.New("tstamp: non-monotonic epochs")
	ErrOpeningFailed = errors.New("tstamp: commitment opening does not match data")
)

// RefMode selects how a link references the protected object.
type RefMode int

// Reference modes.
const (
	// RefHash binds the SHA-256 digest of the object (classic
	// Haber–Stornetta). Computationally hiding only.
	RefHash RefMode = iota
	// RefCommitment binds a Pedersen commitment (LINCOS).
	// Information-theoretically hiding.
	RefCommitment
)

// Link is one element of a timestamp chain.
type Link struct {
	Epoch    int
	Mode     RefMode
	Ref      []byte // digest or serialised commitment
	PrevHash [sha256.Size]byte
	Scheme   sig.Scheme
	Public   []byte
	Sig      []byte
}

// digestInput serialises the signed surface of a link.
func (l *Link) digestInput() []byte {
	buf := make([]byte, 0, 64+len(l.Ref)+len(l.Public))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(l.Epoch))
	buf = append(buf, e[:]...)
	buf = append(buf, byte(l.Mode))
	var lr [4]byte
	binary.BigEndian.PutUint32(lr[:], uint32(len(l.Ref)))
	buf = append(buf, lr[:]...)
	buf = append(buf, l.Ref...)
	buf = append(buf, l.PrevHash[:]...)
	buf = append(buf, []byte(l.Scheme)...)
	buf = append(buf, l.Public...)
	return buf
}

// hash hashes the full link including its signature, for chaining.
func (l *Link) hash() [sha256.Size]byte {
	h := sha256.New()
	h.Write(l.digestInput())
	h.Write(l.Sig)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Chain is a timestamp chain for one object.
type Chain struct {
	Mode  RefMode
	Links []*Link
	// Opening is retained by the data owner in commitment mode; it is NOT
	// part of the public chain.
	Opening *commit.PedersenOpening
	ped     *commit.Pedersen
}

// New starts a chain over data at the given epoch, signed with scheme s.
// In RefCommitment mode, grp supplies the Pedersen group (nil selects
// group.Default()); data is committed via its SHA-256 digest embedded as
// a scalar, so arbitrarily large objects are supported while the
// commitment itself stays hiding.
func New(data []byte, mode RefMode, scheme sig.Scheme, epoch int, grp *group.Group, rnd io.Reader) (*Chain, error) {
	return NewFromDigest(sha256.Sum256(data), mode, scheme, epoch, grp, rnd)
}

// NewFromDigest starts a chain over data known only by its SHA-256
// digest — the streaming-ingest entry point: both reference modes bind
// the object through its digest anyway (RefHash directly, RefCommitment
// as the committed scalar), so a writer that hashed the object
// incrementally while dispersing it never needs the whole plaintext in
// memory to open its chain.
func NewFromDigest(digest [sha256.Size]byte, mode RefMode, scheme sig.Scheme, epoch int, grp *group.Group, rnd io.Reader) (*Chain, error) {
	c := &Chain{Mode: mode}
	var ref []byte
	switch mode {
	case RefHash:
		ref = digest[:]
	case RefCommitment:
		if grp == nil {
			grp = group.Default()
		}
		c.ped = commit.NewPedersen(grp)
		m := new(big.Int).SetBytes(digest[:28]) // fits any sane group's scalar capacity
		pc, op, err := c.ped.Commit(m, rnd)
		if err != nil {
			return nil, err
		}
		c.Opening = &op
		ref = pc.Bytes()
	default:
		return nil, fmt.Errorf("tstamp: unknown ref mode %d", mode)
	}
	link, err := signLink(ref, mode, [sha256.Size]byte{}, scheme, epoch, rnd)
	if err != nil {
		return nil, err
	}
	c.Links = []*Link{link}
	return c, nil
}

func signLink(ref []byte, mode RefMode, prev [sha256.Size]byte, scheme sig.Scheme, epoch int, rnd io.Reader) (*Link, error) {
	signer, err := sig.Get(scheme)
	if err != nil {
		return nil, err
	}
	kp, err := signer.Generate(rnd)
	if err != nil {
		return nil, err
	}
	l := &Link{Epoch: epoch, Mode: mode, Ref: ref, PrevHash: prev, Scheme: scheme, Public: kp.Public}
	s, err := signer.Sign(kp, l.digestInput(), rnd)
	if err != nil {
		return nil, err
	}
	l.Sig = s
	return l, nil
}

// Renew appends a link signed with the given (presumably newer) scheme at
// the given epoch. The new link covers the previous link's full hash, so
// earlier signatures need only have been unbroken up to this moment.
func (c *Chain) Renew(scheme sig.Scheme, epoch int, rnd io.Reader) error {
	if len(c.Links) == 0 {
		return ErrEmptyChain
	}
	last := c.Links[len(c.Links)-1]
	if epoch < last.Epoch {
		return fmt.Errorf("%w: %d after %d", ErrEpochOrder, epoch, last.Epoch)
	}
	link, err := signLink(last.Ref, c.Mode, last.hash(), scheme, epoch, rnd)
	if err != nil {
		return err
	}
	c.Links = append(c.Links, link)
	return nil
}

// Verify checks the chain's integrity as of epoch `now` under the given
// break schedule. The rule per link k: its signature must verify, it must
// cover link k−1's hash, epochs must be monotone, and its scheme must
// have remained unbroken until link k+1 was created (or until `now` for
// the final link). A scheme that broke *after* its successor link exists
// does no damage — that is the whole point of renewal.
func (c *Chain) Verify(now int, breaks sig.BreakSchedule) error {
	if len(c.Links) == 0 {
		return ErrEmptyChain
	}
	var prevHash [sha256.Size]byte
	prevEpoch := -1 << 62
	for k, l := range c.Links {
		if l.Epoch < prevEpoch {
			return fmt.Errorf("%w: link %d", ErrEpochOrder, k)
		}
		if l.PrevHash != prevHash {
			return fmt.Errorf("%w: link %d", ErrChainGap, k)
		}
		signer, err := sig.Get(l.Scheme)
		if err != nil {
			return err
		}
		if err := signer.Verify(l.Public, l.digestInput(), l.Sig); err != nil {
			return fmt.Errorf("%w: link %d (%s): %v", ErrBrokenLink, k, l.Scheme, err)
		}
		// The scheme must have survived until the next link's epoch.
		horizon := now
		if k+1 < len(c.Links) {
			horizon = c.Links[k+1].Epoch
		}
		if breaks.BrokenAt(l.Scheme, horizon) {
			// Broken at or before the horizon: was it broken when the
			// successor was created (or now, for the head)? If the break
			// epoch is <= horizon, the guarantee fails.
			return fmt.Errorf("%w: link %d scheme %s broke at epoch %d, horizon %d",
				ErrLateRenewal, k, l.Scheme, breaks[l.Scheme], horizon)
		}
		prevHash = l.hash()
		prevEpoch = l.Epoch
	}
	return nil
}

// VerifyData checks that the chain actually vouches for the given data:
// in hash mode by digest comparison, in commitment mode by verifying the
// retained opening against the committed scalar.
func (c *Chain) VerifyData(data []byte) error {
	return c.VerifyDigest(sha256.Sum256(data))
}

// VerifyDigest is VerifyData for callers that hashed the object
// incrementally (streaming reads): the chain binds the digest, so the
// check never needs the whole plaintext at once.
func (c *Chain) VerifyDigest(digest [sha256.Size]byte) error {
	if len(c.Links) == 0 {
		return ErrEmptyChain
	}
	first := c.Links[0]
	switch c.Mode {
	case RefHash:
		if string(digest[:]) != string(first.Ref) {
			return ErrOpeningFailed
		}
		return nil
	case RefCommitment:
		if c.Opening == nil || c.ped == nil {
			return fmt.Errorf("%w: opening not held", ErrOpeningFailed)
		}
		m := new(big.Int).SetBytes(digest[:28])
		if m.Cmp(c.Opening.M) != 0 {
			return ErrOpeningFailed
		}
		pc := commit.PedersenCommitmentFromBytes(first.Ref)
		if err := c.ped.Verify(pc, *c.Opening); err != nil {
			return fmt.Errorf("%w: %v", ErrOpeningFailed, err)
		}
		return nil
	default:
		return fmt.Errorf("tstamp: unknown ref mode %d", c.Mode)
	}
}

// Head returns the most recent link.
func (c *Chain) Head() *Link {
	if len(c.Links) == 0 {
		return nil
	}
	return c.Links[len(c.Links)-1]
}

// Len returns the number of links.
func (c *Chain) Len() int { return len(c.Links) }
