package tstamp

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"testing"

	"securearchive/internal/group"
	"securearchive/internal/sig"
)

var doc = []byte("an archival record that must remain provably intact for a century")

func newHashChain(t *testing.T) *Chain {
	t.Helper()
	c, err := New(doc, RefHash, sig.Ed25519, 0, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainCreateAndVerify(t *testing.T) {
	c := newHashChain(t)
	if err := c.Verify(10, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyData(doc); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyData([]byte("different")); !errors.Is(err, ErrOpeningFailed) {
		t.Fatalf("wrong data accepted: %v", err)
	}
}

func TestRenewalRotatesSchemes(t *testing.T) {
	c := newHashChain(t)
	if err := c.Renew(sig.ECDSAP256, 100, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := c.Renew(sig.RSAPSS2048, 200, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("chain length %d, want 3", c.Len())
	}
	if err := c.Verify(300, nil); err != nil {
		t.Fatal(err)
	}
	if c.Head().Scheme != sig.RSAPSS2048 {
		t.Fatalf("head scheme %s", c.Head().Scheme)
	}
}

// TestBreakAfterRenewalIsHarmless: Ed25519 breaks at epoch 150, but the
// chain was renewed with ECDSA at epoch 100 — integrity survives (E7's
// positive case).
func TestBreakAfterRenewalIsHarmless(t *testing.T) {
	c := newHashChain(t)
	if err := c.Renew(sig.ECDSAP256, 100, rand.Reader); err != nil {
		t.Fatal(err)
	}
	breaks := sig.BreakSchedule{sig.Ed25519: 150}
	if err := c.Verify(1000, breaks); err != nil {
		t.Fatalf("break after renewal must be harmless: %v", err)
	}
}

// TestBreakBeforeRenewalFails: Ed25519 breaks at epoch 50, renewal only
// happened at 100 — the guarantee is void (E7's negative case).
func TestBreakBeforeRenewalFails(t *testing.T) {
	c := newHashChain(t)
	if err := c.Renew(sig.ECDSAP256, 100, rand.Reader); err != nil {
		t.Fatal(err)
	}
	breaks := sig.BreakSchedule{sig.Ed25519: 50}
	if err := c.Verify(1000, breaks); !errors.Is(err, ErrLateRenewal) {
		t.Fatalf("late renewal not detected: %v", err)
	}
}

// TestUnrenewedChainDiesWithItsScheme: a chain never renewed fails once
// its only scheme breaks before `now`.
func TestUnrenewedChainDiesWithItsScheme(t *testing.T) {
	c := newHashChain(t)
	breaks := sig.BreakSchedule{sig.Ed25519: 500}
	if err := c.Verify(499, breaks); err != nil {
		t.Fatalf("valid before break: %v", err)
	}
	if err := c.Verify(500, breaks); !errors.Is(err, ErrLateRenewal) {
		t.Fatalf("chain should die at break epoch: %v", err)
	}
}

func TestTamperedLinkDetected(t *testing.T) {
	c := newHashChain(t)
	c.Renew(sig.ECDSAP256, 10, rand.Reader)
	c.Links[0].Epoch = 5 // tamper with a signed field
	err := c.Verify(20, nil)
	if err == nil {
		t.Fatal("tampered link accepted")
	}
	if !errors.Is(err, ErrBrokenLink) && !errors.Is(err, ErrChainGap) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

func TestChainGapDetected(t *testing.T) {
	c := newHashChain(t)
	c.Renew(sig.ECDSAP256, 10, rand.Reader)
	c.Links[1].PrevHash[0] ^= 1
	err := c.Verify(20, nil)
	if err == nil {
		t.Fatal("gap accepted")
	}
}

func TestEpochMonotonicity(t *testing.T) {
	c := newHashChain(t)
	if err := c.Renew(sig.ECDSAP256, 10, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := c.Renew(sig.RSAPSS2048, 5, rand.Reader); !errors.Is(err, ErrEpochOrder) {
		t.Fatalf("regressing epoch accepted: %v", err)
	}
}

func TestCommitmentModeHidesAndVerifies(t *testing.T) {
	c, err := New(doc, RefCommitment, sig.Ed25519, 0, group.Test(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(10, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyData(doc); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyData([]byte("not the doc")); !errors.Is(err, ErrOpeningFailed) {
		t.Fatalf("wrong data accepted in commitment mode: %v", err)
	}
	// The public reference must NOT be the SHA-256 of the document (that
	// is the LINCOS point — no digest leaks).
	d := sha256.Sum256(doc)
	if string(c.Links[0].Ref) == string(d[:]) {
		t.Fatal("commitment mode leaked the plain digest")
	}
}

func TestCommitmentChainsAreUnlinkable(t *testing.T) {
	c1, _ := New(doc, RefCommitment, sig.Ed25519, 0, group.Test(), rand.Reader)
	c2, _ := New(doc, RefCommitment, sig.Ed25519, 0, group.Test(), rand.Reader)
	if string(c1.Links[0].Ref) == string(c2.Links[0].Ref) {
		t.Fatal("two commitments to the same document are equal: not hiding")
	}
}

func TestEmptyChainErrors(t *testing.T) {
	var c Chain
	if err := c.Verify(0, nil); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("verify empty: %v", err)
	}
	if err := c.Renew(sig.Ed25519, 0, rand.Reader); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("renew empty: %v", err)
	}
	if c.Head() != nil {
		t.Fatal("head of empty chain not nil")
	}
}

func TestLongRotationSchedule(t *testing.T) {
	// A century of renewals across all three schemes, each scheme breaking
	// shortly AFTER its last use: the chain must stay valid throughout.
	c := newHashChain(t)
	schemes := []sig.Scheme{sig.ECDSAP256, sig.RSAPSS2048, sig.Ed25519}
	for k := 0; k < 12; k++ {
		if err := c.Renew(schemes[k%3], (k+1)*10, rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	breaks := sig.BreakSchedule{} // nothing broken: sanity
	if err := c.Verify(130, breaks); err != nil {
		t.Fatal(err)
	}
	// Now break ed25519 at epoch 125; its last use is the epoch-120 link,
	// which is the head — head horizon is `now`=130 > 125 → invalid.
	breaks = sig.BreakSchedule{sig.Ed25519: 125}
	if err := c.Verify(130, breaks); !errors.Is(err, ErrLateRenewal) {
		t.Fatalf("head scheme break not detected: %v", err)
	}
	// Renew with a surviving scheme before the break bites: valid again.
	if err := c.Renew(sig.ECDSAP256, 124, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(130, breaks); err != nil {
		t.Fatalf("post-renewal chain invalid: %v", err)
	}
}

func BenchmarkRenewEd25519(b *testing.B) {
	c, _ := New(doc, RefHash, sig.Ed25519, 0, nil, rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Renew(sig.Ed25519, i+1, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChain10Links(b *testing.B) {
	c, _ := New(doc, RefHash, sig.Ed25519, 0, nil, rand.Reader)
	for k := 0; k < 9; k++ {
		c.Renew(sig.Ed25519, k+1, rand.Reader)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Verify(100, nil); err != nil {
			b.Fatal(err)
		}
	}
}
