// Package vss implements verifiable secret sharing (VSS) over a
// prime-order group: Feldman's scheme and Pedersen's scheme.
//
// Plain Shamir sharing (package shamir) trusts the dealer and the
// shareholders: a corrupt dealer can hand out inconsistent shares, and a
// corrupt shareholder can return garbage at reconstruction — both attacks
// the paper flags as fatal for the share-renewal phase of proactive secret
// sharing (§3.3). VSS fixes this by publishing commitments to the sharing
// polynomial's coefficients against which every share can be checked.
//
// Feldman VSS publishes A_j = g^{a_j}; verification checks
// g^{s_i} = Π_j A_j^{i^j}. It is only computationally hiding (g^{secret}
// leaks under a discrete-log break), so this repository uses it as the
// *baseline* and uses Pedersen VSS — commitments C_j = g^{a_j}·h^{b_j}
// over a companion blinding polynomial — where long-term confidentiality
// matters: Pedersen VSS is information-theoretically hiding and is the
// sub-protocol the paper names for safeguarding proactive renewal.
//
// Shares here are scalars in Z_q; bulk data takes the GF(256) path
// (shamir, pss) and uses these schemes for keys and per-object secrets,
// mirroring LINCOS.
package vss

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"securearchive/internal/group"
)

// Errors returned by this package.
var (
	ErrInvalidParams  = errors.New("vss: invalid parameters")
	ErrVerifyFailed   = errors.New("vss: share verification failed")
	ErrTooFewShares   = errors.New("vss: not enough shares")
	ErrDuplicateShare = errors.New("vss: duplicate share index")
)

// Share is one participant's scalar share. For Feldman sharings Blind is
// nil; for Pedersen sharings it carries the share of the blinding
// polynomial.
type Share struct {
	X     int64    // evaluation point, 1..n
	S     *big.Int // f(X) mod q
	Blind *big.Int // f'(X) mod q, Pedersen only
}

// Commitments is the public verification vector: A_j (Feldman) or
// C_j (Pedersen), one per polynomial coefficient, degree order.
type Commitments struct {
	G        *group.Group
	Pedersen bool
	C        []*big.Int
}

// Threshold returns t, the reconstruction threshold.
func (c *Commitments) Threshold() int { return len(c.C) }

// evalPoly evaluates a polynomial with coefficients coeffs (constant
// first) at x, mod q.
func evalPoly(coeffs []*big.Int, x int64, q *big.Int) *big.Int {
	acc := new(big.Int)
	xb := big.NewInt(x)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, xb)
		acc.Add(acc, coeffs[i])
		acc.Mod(acc, q)
	}
	return acc
}

func randPoly(g *group.Group, secret *big.Int, t int, rnd io.Reader) ([]*big.Int, error) {
	coeffs := make([]*big.Int, t)
	coeffs[0] = new(big.Int).Mod(secret, g.Q)
	for j := 1; j < t; j++ {
		c, err := g.RandScalar(rnd)
		if err != nil {
			return nil, err
		}
		coeffs[j] = c
	}
	return coeffs, nil
}

// FeldmanSplit shares secret (a scalar mod q) into n shares with threshold
// t and returns the shares plus the public commitment vector.
func FeldmanSplit(g *group.Group, secret *big.Int, n, t int, rnd io.Reader) ([]Share, *Commitments, error) {
	if err := checkParams(n, t); err != nil {
		return nil, nil, err
	}
	coeffs, err := randPoly(g, secret, t, rnd)
	if err != nil {
		return nil, nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := int64(i + 1)
		shares[i] = Share{X: x, S: evalPoly(coeffs, x, g.Q)}
	}
	comms := &Commitments{G: g, Pedersen: false, C: make([]*big.Int, t)}
	for j, a := range coeffs {
		comms.C[j] = g.ExpG(a)
	}
	return shares, comms, nil
}

// PedersenSplit shares secret with threshold t, additionally sampling a
// blinding polynomial so the published commitments reveal nothing about
// the secret even to an unbounded adversary. It returns the shares (each
// carrying a blinding share) and the commitment vector.
func PedersenSplit(g *group.Group, secret *big.Int, n, t int, rnd io.Reader) ([]Share, *Commitments, error) {
	blindSecret, err := g.RandScalar(rnd)
	if err != nil {
		return nil, nil, err
	}
	return PedersenSplitWithBlind(g, secret, blindSecret, n, t, rnd)
}

// PedersenSplitWithBlind is PedersenSplit with a caller-chosen blinding
// constant b0 (the blinding polynomial's constant term). Proactive renewal
// uses it to deal verifiable zero-sharings: with secret = 0 the dealer can
// later open b0, proving C_0 = h^{b0} — i.e. that the dealt secret is
// zero — without revealing any other coefficient.
func PedersenSplitWithBlind(g *group.Group, secret, b0 *big.Int, n, t int, rnd io.Reader) ([]Share, *Commitments, error) {
	if err := checkParams(n, t); err != nil {
		return nil, nil, err
	}
	coeffs, err := randPoly(g, secret, t, rnd)
	if err != nil {
		return nil, nil, err
	}
	blind, err := randPoly(g, b0, t, rnd)
	if err != nil {
		return nil, nil, err
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := int64(i + 1)
		shares[i] = Share{X: x, S: evalPoly(coeffs, x, g.Q), Blind: evalPoly(blind, x, g.Q)}
	}
	comms := &Commitments{G: g, Pedersen: true, C: make([]*big.Int, t)}
	for j := range coeffs {
		comms.C[j] = g.Mul(g.ExpG(coeffs[j]), g.ExpH(blind[j]))
	}
	return shares, comms, nil
}

// Verify checks a share against the commitment vector:
//
//	Feldman:  g^{s}           == Π_j C_j^{x^j}
//	Pedersen: g^{s} · h^{s'}  == Π_j C_j^{x^j}
func Verify(c *Commitments, s Share) error {
	if s.S == nil || s.X <= 0 {
		return fmt.Errorf("%w: malformed share", ErrVerifyFailed)
	}
	g := c.G
	var lhs *big.Int
	if c.Pedersen {
		if s.Blind == nil {
			return fmt.Errorf("%w: missing blinding share", ErrVerifyFailed)
		}
		lhs = g.Mul(g.ExpG(s.S), g.ExpH(s.Blind))
	} else {
		lhs = g.ExpG(s.S)
	}
	rhs := big.NewInt(1)
	xj := big.NewInt(1)
	x := big.NewInt(s.X)
	for _, cj := range c.C {
		rhs = g.Mul(rhs, g.Exp(cj, xj))
		xj = new(big.Int).Mod(new(big.Int).Mul(xj, x), g.Q)
	}
	if lhs.Cmp(rhs) != 0 {
		return ErrVerifyFailed
	}
	return nil
}

// Combine reconstructs the secret scalar from at least t shares by
// Lagrange interpolation at zero, mod q. Shares are NOT verified here;
// call Verify per share first when the holders are untrusted.
func Combine(g *group.Group, shares []Share, t int) (*big.Int, error) {
	if t < 1 {
		return nil, fmt.Errorf("%w: t=%d", ErrInvalidParams, t)
	}
	if len(shares) < t {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), t)
	}
	use := shares[:t]
	seen := make(map[int64]bool, t)
	for _, s := range use {
		if s.X <= 0 || s.S == nil {
			return nil, fmt.Errorf("%w: malformed share", ErrInvalidParams)
		}
		if seen[s.X] {
			return nil, fmt.Errorf("%w: x=%d", ErrDuplicateShare, s.X)
		}
		seen[s.X] = true
	}
	secret := new(big.Int)
	for i, si := range use {
		li := lagrangeAtZero(use, i, g.Q)
		term := new(big.Int).Mul(li, si.S)
		secret.Add(secret, term)
		secret.Mod(secret, g.Q)
	}
	return secret, nil
}

// lagrangeAtZero computes l_i(0) = Π_{j≠i} x_j / (x_j - x_i) mod q.
func lagrangeAtZero(shares []Share, i int, q *big.Int) *big.Int {
	num := big.NewInt(1)
	den := big.NewInt(1)
	xi := big.NewInt(shares[i].X)
	for j, sj := range shares {
		if j == i {
			continue
		}
		xj := big.NewInt(sj.X)
		num.Mul(num, xj)
		num.Mod(num, q)
		d := new(big.Int).Sub(xj, xi)
		d.Mod(d, q)
		den.Mul(den, d)
		den.Mod(den, q)
	}
	den.ModInverse(den, q)
	out := new(big.Int).Mul(num, den)
	return out.Mod(out, q)
}

// SplitBytes shares a byte-string secret that fits the group's scalar
// capacity, using Pedersen VSS (the information-theoretically hiding
// scheme) by default.
func SplitBytes(g *group.Group, secret []byte, n, t int, rnd io.Reader) ([]Share, *Commitments, error) {
	if len(secret) == 0 || len(secret) > g.ScalarCapacity() {
		return nil, nil, fmt.Errorf("%w: secret length %d (capacity %d)", ErrInvalidParams, len(secret), g.ScalarCapacity())
	}
	return PedersenSplit(g, new(big.Int).SetBytes(secret), n, t, rnd)
}

// CombineBytes reconstructs a byte-string secret of the given length.
func CombineBytes(g *group.Group, shares []Share, t, secretLen int) ([]byte, error) {
	s, err := Combine(g, shares, t)
	if err != nil {
		return nil, err
	}
	b := s.Bytes()
	if len(b) > secretLen {
		return nil, fmt.Errorf("%w: reconstructed value exceeds declared length", ErrInvalidParams)
	}
	out := make([]byte, secretLen)
	copy(out[secretLen-len(b):], b)
	return out, nil
}

func checkParams(n, t int) error {
	if t < 1 || t > n {
		return fmt.Errorf("%w: t=%d n=%d", ErrInvalidParams, t, n)
	}
	return nil
}
