package vss

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"securearchive/internal/group"
)

func tg() *group.Group { return group.Test() }

func TestFeldmanRoundTrip(t *testing.T) {
	g := tg()
	secret := big.NewInt(987654321)
	shares, comms, err := FeldmanSplit(g, secret, 5, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if err := Verify(comms, s); err != nil {
			t.Fatalf("share %d failed verification: %v", s.X, err)
		}
	}
	got, err := Combine(g, shares[1:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
}

func TestPedersenRoundTrip(t *testing.T) {
	g := tg()
	secret := big.NewInt(42424242)
	shares, comms, err := PedersenSplit(g, secret, 7, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if err := Verify(comms, s); err != nil {
			t.Fatalf("share %d failed verification: %v", s.X, err)
		}
	}
	got, err := Combine(g, shares[2:6], 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
}

func TestVerifyDetectsCorruptShare(t *testing.T) {
	g := tg()
	for _, pedersen := range []bool{false, true} {
		var shares []Share
		var comms *Commitments
		var err error
		if pedersen {
			shares, comms, err = PedersenSplit(g, big.NewInt(1), 4, 2, rand.Reader)
		} else {
			shares, comms, err = FeldmanSplit(g, big.NewInt(1), 4, 2, rand.Reader)
		}
		if err != nil {
			t.Fatal(err)
		}
		bad := shares[0]
		bad.S = new(big.Int).Add(bad.S, big.NewInt(1))
		if err := Verify(comms, bad); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("pedersen=%v: corrupted share accepted: %v", pedersen, err)
		}
		if pedersen {
			bad2 := shares[1]
			bad2.Blind = new(big.Int).Add(bad2.Blind, big.NewInt(1))
			if err := Verify(comms, bad2); !errors.Is(err, ErrVerifyFailed) {
				t.Fatal("corrupted blinding share accepted")
			}
			noBlind := shares[2]
			noBlind.Blind = nil
			if err := Verify(comms, noBlind); !errors.Is(err, ErrVerifyFailed) {
				t.Fatal("missing blinding share accepted")
			}
		}
	}
}

// TestFeldmanLeaksUnderDlogBreak documents WHY Feldman is only
// computationally hiding: the commitment C_0 = g^secret. An adversary who
// can compute discrete logs reads the secret straight off the commitment.
// We play that adversary for a tiny secret by brute force.
func TestFeldmanLeaksUnderDlogBreak(t *testing.T) {
	g := tg()
	secret := big.NewInt(1337) // small enough to brute-force
	_, comms, err := FeldmanSplit(g, secret, 3, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// "Cryptanalytic break": brute-force the dlog of C_0.
	target := comms.C[0]
	acc := big.NewInt(1)
	found := int64(-1)
	for k := int64(0); k <= 100000; k++ {
		if acc.Cmp(target) == 0 {
			found = k
			break
		}
		acc = g.Mul(acc, g.G)
	}
	if found != 1337 {
		t.Fatalf("dlog attack recovered %d, want 1337", found)
	}
}

// TestPedersenDoesNotLeakUnderDlogBreak: the same attack against Pedersen
// commitments fails, because C_0 = g^secret · h^blind is a uniformly
// random group element over the choice of blind. We check that C_0 does
// not equal g^secret (overwhelmingly) and that two sharings of the same
// secret produce different commitment vectors.
func TestPedersenDoesNotLeakUnderDlogBreak(t *testing.T) {
	g := tg()
	secret := big.NewInt(1337)
	_, comms1, _ := PedersenSplit(g, secret, 3, 2, rand.Reader)
	_, comms2, _ := PedersenSplit(g, secret, 3, 2, rand.Reader)
	if comms1.C[0].Cmp(g.ExpG(secret)) == 0 {
		t.Fatal("Pedersen C_0 equals g^secret: blinding absent")
	}
	if comms1.C[0].Cmp(comms2.C[0]) == 0 {
		t.Fatal("two Pedersen sharings share C_0: not randomised")
	}
}

func TestCombineErrors(t *testing.T) {
	g := tg()
	shares, _, _ := FeldmanSplit(g, big.NewInt(9), 4, 3, rand.Reader)
	if _, err := Combine(g, shares[:2], 3); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("too few: %v", err)
	}
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := Combine(g, dup, 3); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := Combine(g, shares, 0); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t=0: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	g := tg()
	if _, _, err := FeldmanSplit(g, big.NewInt(1), 3, 4, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t>n: %v", err)
	}
	if _, _, err := PedersenSplit(g, big.NewInt(1), 3, 0, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("t=0: %v", err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	g := tg()
	secret := []byte("key material for an object\x00\x01")
	shares, comms, err := SplitBytes(g, secret, 5, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !comms.Pedersen {
		t.Fatal("SplitBytes must use the IT-hiding scheme")
	}
	got, err := CombineBytes(g, shares[:3], 3, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("byte secret mismatch")
	}
}

func TestBytesLeadingZeros(t *testing.T) {
	g := tg()
	secret := []byte{0, 0, 7, 0}
	shares, _, err := SplitBytes(g, secret, 3, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CombineBytes(g, shares[:2], 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("leading-zero secret mangled: %v", got)
	}
}

func TestBytesTooLong(t *testing.T) {
	g := tg()
	long := make([]byte, g.ScalarCapacity()+1)
	if _, _, err := SplitBytes(g, long, 3, 2, rand.Reader); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("oversize secret: %v", err)
	}
}

func TestSecretsModQ(t *testing.T) {
	// Secrets >= q must be reduced, and reconstruction returns the residue.
	g := tg()
	big := new(big.Int).Add(g.Q, new(big.Int).SetInt64(5))
	shares, _, err := FeldmanSplit(g, big, 3, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(g, shares[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 5 {
		t.Fatalf("got %v, want 5 (reduced)", got)
	}
}

func BenchmarkPedersenSplit5of3(b *testing.B) {
	g := tg()
	secret := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PedersenSplit(g, secret, 5, 3, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyShare(b *testing.B) {
	g := tg()
	shares, comms, _ := PedersenSplit(g, big.NewInt(1), 5, 3, rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(comms, shares[0]); err != nil {
			b.Fatal(err)
		}
	}
}
