package workload

// Closed-loop saturation driver: W worker goroutines issue a configurable
// put/get/scrub mix against a live core.Vault, each worker firing its
// next operation as soon as the previous one returns. Throughput comes
// from wall-clock op counts; latency percentiles come from the obs
// registry's vault.put.ok / vault.get.ok histograms — the same
// instruments the monitor serves, so the harness measures exactly the
// instrumented path.
//
// The driver is what papereval -saturate and archivectl bench run: it is
// the closed-loop complement to the open-loop trace generator above, and
// the measurement for the vault's striped-locking design — distinct
// objects must scale with W, and the optional FaultPlan yields
// degraded-mode throughput curves.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securearchive/internal/core"
	"securearchive/internal/obs"
)

// OpMix weights the operations a saturation worker draws from. Weights
// are relative; zero disables an operation.
type OpMix struct {
	Put   float64 `json:"put"`
	Get   float64 `json:"get"`
	Scrub float64 `json:"scrub"`
}

// DefaultMix models archival traffic: write-dominated ingest with read
// verification and a trickle of scrubbing.
func DefaultMix() OpMix { return OpMix{Put: 0.45, Get: 0.45, Scrub: 0.10} }

// SmallObjectMix models metadata-heavy bulk ingest — the many-tiny-records
// regime (file manifests, audit entries, per-document keys) where fixed
// per-put costs dominate and write batching pays. It is put-only: the
// sweep isolates the write path the batcher changes, while member reads
// ride the same vault surface as any object and are measured by the main
// saturation sweep.
func SmallObjectMix() OpMix { return OpMix{Put: 1} }

// SmallObjectBytes is the canonical small-object size the batched
// saturation sweep measures (papereval -saturate-small).
const SmallObjectBytes = 4 << 10

// SaturationConfig parameterises one closed-loop run.
type SaturationConfig struct {
	// Workers is W, the closed-loop concurrency.
	Workers int
	// TotalOps is the number of operations issued across all workers
	// (split evenly). Keeping it fixed as W varies keeps run cost flat
	// while the loop measures how much wall-clock W workers shave off.
	TotalOps int
	// ObjectBytes sizes every object.
	ObjectBytes int
	// Preload objects ("pre-NNNN") are stored before the measured window
	// so Gets and Scrubs always have targets.
	Preload int
	// Mix weights put/get/scrub; DefaultMix when all-zero.
	Mix OpMix
	// Seed determinises each worker's op sequence (worker w draws from
	// Seed+w).
	Seed int64
	// SharedIDs, when true, aims every worker's Gets and Scrubs at the
	// same preloaded ids AND makes Puts collide on per-worker ids — the
	// contention-heavy variant. Default (false) exercises the
	// distinct-object fast path: each Put creates a fresh id.
	SharedIDs bool
	// Batched routes every measured Put through one shared core.Batcher
	// (the small-object group-commit path) instead of Vault.Put. Gets and
	// Scrubs are unchanged — members read and scrub through the same vault
	// surface as any object.
	Batched bool
	// ReadSkew > 1 aims Gets at the preloaded ids through a zipfian
	// distribution with that skew (rank 0 hottest) instead of the
	// uniform draw — the hot-set regime the read cache targets. 0
	// keeps the uniform draw; values in (0, 1] are invalid (the zipf
	// generator needs s > 1).
	ReadSkew float64
}

func (cfg SaturationConfig) normalize() (SaturationConfig, error) {
	if cfg.Workers < 1 {
		return cfg, fmt.Errorf("%w: workers=%d", ErrBadParams, cfg.Workers)
	}
	if cfg.TotalOps < cfg.Workers {
		cfg.TotalOps = cfg.Workers
	}
	if cfg.ObjectBytes <= 0 {
		cfg.ObjectBytes = 32 << 10
	}
	if cfg.Preload <= 0 {
		cfg.Preload = 8
	}
	if cfg.Mix.Put <= 0 && cfg.Mix.Get <= 0 && cfg.Mix.Scrub <= 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.ReadSkew > 0 && cfg.ReadSkew <= 1 {
		return cfg, fmt.Errorf("%w: read skew=%v (need 0 or > 1)", ErrBadParams, cfg.ReadSkew)
	}
	return cfg, nil
}

// LatencySummary is the obs-derived latency digest for one op family.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50Ns float64 `json:"p50_ns"`
	P95Ns float64 `json:"p95_ns"`
	P99Ns float64 `json:"p99_ns"`
}

func summarize(h obs.HistogramSnapshot) LatencySummary {
	return LatencySummary{Count: h.Count, P50Ns: h.P50, P95Ns: h.P95, P99Ns: h.P99}
}

// SaturationResult reports one closed-loop run.
type SaturationResult struct {
	Workers     int     `json:"workers"`
	Ops         int64   `json:"ops"`
	Puts        int64   `json:"puts"`
	Gets        int64   `json:"gets"`
	Scrubs      int64   `json:"scrubs"`
	Errors      int64   `json:"errors"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	PutMBPerSec float64 `json:"put_mb_per_sec"`
	GetMBPerSec float64 `json:"get_mb_per_sec"`
	// Obs-derived per-op latency percentiles (vault.put.ok /
	// vault.get.ok span-bridge histograms over the measured window).
	PutLatency LatencySummary `json:"put_latency"`
	GetLatency LatencySummary `json:"get_latency"`
	// LockWaitP99Ns is the p99 of vault.lock.wait_ns over the window —
	// the striped design's contention residue.
	LockWaitP99Ns float64 `json:"lock_wait_p99_ns"`
	// Read-cache accounting over the measured window (zero when the
	// vault runs without a cache): hits and misses from the encoding-
	// labeled vault.cache.{hit,miss} counters, and their ratio.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// Saturate drives the vault with cfg.Workers closed-loop workers and
// returns the measured result. reg must be the registry the vault (and
// ideally its cluster) reports into; it is Reset at the start of the
// measured window, so pass an isolated registry, not obs.Default(), when
// anything else shares the process. The caller installs any FaultPlan on
// the cluster beforehand; errors from individual ops (e.g. degraded
// reads below threshold under faults) are counted, not fatal — a
// saturation run measures the vault under duress, it doesn't assert
// health. Put payloads are deterministic from the id, and every Get's
// payload is verified against it: a mismatch is reported as an error.
func Saturate(v *core.Vault, reg *obs.Registry, cfg SaturationConfig) (*SaturationResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	preIDs := make([]string, cfg.Preload)
	for i := range preIDs {
		preIDs[i] = fmt.Sprintf("pre-%04d", i)
		if err := v.Put(preIDs[i], payloadFor(preIDs[i], cfg.ObjectBytes)); err != nil {
			return nil, fmt.Errorf("workload: preload %s: %w", preIDs[i], err)
		}
	}

	var (
		puts, gets, scrubs, errCount atomic.Int64
		wg                           sync.WaitGroup
	)
	perWorker := cfg.TotalOps / cfg.Workers
	total := float64(cfg.Mix.Put + cfg.Mix.Get + cfg.Mix.Scrub)
	put := v.Put
	if cfg.Batched {
		b := v.NewBatcher()
		defer b.Close()
		put = b.Put
	}

	reg.Reset()
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			// The zipf source is seeded apart from the op-mix stream so
			// enabling skew changes WHICH ids Gets hit, not the op
			// sequence itself.
			var zm *ZipfMix
			if cfg.ReadSkew > 1 {
				zm, _ = NewZipfMix(cfg.Seed+1000+int64(w), cfg.ReadSkew, len(preIDs))
			}
			seq := 0
			for op := 0; op < perWorker; op++ {
				u := rng.Float64() * total
				switch {
				case u < cfg.Mix.Put:
					id := fmt.Sprintf("w%03d-%06d", w, seq)
					if cfg.SharedIDs {
						// Collide on a small id set: half the puts hit ids
						// other workers also create, exercising ErrExists
						// and same-object lock contention.
						id = fmt.Sprintf("hot-%03d", seq%8)
					}
					seq++
					err := put(id, payloadFor(id, cfg.ObjectBytes))
					puts.Add(1)
					if err != nil && !cfg.SharedIDs {
						errCount.Add(1)
					}
				case u < cfg.Mix.Put+cfg.Mix.Get:
					// The uniform draw is consumed either way so a skewed
					// run replays the same op interleaving as a uniform one.
					id := preIDs[rng.Intn(len(preIDs))]
					if zm != nil {
						id = preIDs[zm.Next()]
					}
					data, err := v.Get(id)
					gets.Add(1)
					if err != nil {
						errCount.Add(1)
					} else if !bytesEqual(data, payloadFor(id, cfg.ObjectBytes)) {
						errCount.Add(1)
					}
				default:
					id := preIDs[rng.Intn(len(preIDs))]
					if _, err := v.Scrub(id); err != nil {
						errCount.Add(1)
					}
					scrubs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	res := &SaturationResult{
		Workers:       cfg.Workers,
		Puts:          puts.Load(),
		Gets:          gets.Load(),
		Scrubs:        scrubs.Load(),
		Errors:        errCount.Load(),
		ElapsedNs:     elapsed.Nanoseconds(),
		PutLatency:    summarize(snap.Histograms["vault.put.ok"]),
		GetLatency:    summarize(snap.Histograms["vault.get.ok"]),
		LockWaitP99Ns: snap.Histograms["vault.lock.wait_ns"].P99,
	}
	res.Ops = res.Puts + res.Gets + res.Scrubs
	if s := elapsed.Seconds(); s > 0 {
		res.OpsPerSec = float64(res.Ops) / s
		res.PutMBPerSec = snap.Histograms["vault.put.bytes"].Sum / s / 1e6
		res.GetMBPerSec = snap.Histograms["vault.get.bytes"].Sum / s / 1e6
	}
	// Read-cache accounting: the vault.cache.{hit,miss} counters are
	// labeled by encoding, so read them back under this vault's slug.
	slug := strings.ReplaceAll(strings.ToLower(v.Encoding.Name()), " ", "_")
	res.CacheHits, _ = snap.Series("vault.cache.hit", slug)
	res.CacheMisses, _ = snap.Series("vault.cache.miss", slug)
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		res.CacheHitRatio = float64(res.CacheHits) / float64(lookups)
	}
	return res, nil
}

// payloadFor materialises the deterministic payload every Put stores and
// every Get verifies against: reproducible across workers and runs, so a
// torn or cross-wired read is caught as corruption, not noise.
func payloadFor(id string, n int) []byte {
	r := rand.New(rand.NewSource(int64(hashString(id))))
	buf := make([]byte, n)
	r.Read(buf)
	return buf
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SweepWorkers runs Saturate at each worker count over a fresh vault
// built by mk (a fresh cluster+vault+registry per cell keeps cells
// independent: no cross-W cache warmth or leftover objects). mk also
// installs any fault plan. Each cell's cluster is closed once its run
// finishes — a no-op in memory, but the disk backend holds a WAL and
// segment file handles that must be released between cells.
func SweepWorkers(workerCounts []int, cfg SaturationConfig, mk func() (*core.Vault, *obs.Registry, error)) ([]*SaturationResult, error) {
	var out []*SaturationResult
	for _, w := range workerCounts {
		v, reg, err := mk()
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Workers = w
		res, err := Saturate(v, reg, c)
		v.Cluster.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ScalingX returns the throughput ratio between the result at wHigh and
// the result at wLow workers, or 0 when either is missing — the number
// the stripe-scaling gate checks (W=16 ≥ 2× W=1 on multi-core boxes).
func ScalingX(results []*SaturationResult, wLow, wHigh int) float64 {
	var lo, hi float64
	for _, r := range results {
		switch r.Workers {
		case wLow:
			lo = r.OpsPerSec
		case wHigh:
			hi = r.OpsPerSec
		}
	}
	if lo <= 0 {
		return 0
	}
	return hi / lo
}
