package workload

import (
	"runtime"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

func benchVault(t *testing.T, plan *cluster.FaultPlan) (*core.Vault, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	if plan != nil {
		c.SetFaultPlan(plan)
	}
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
		core.WithGroup(group.Test()), core.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	return v, reg
}

func TestSaturateBasic(t *testing.T) {
	v, reg := benchVault(t, nil)
	res, err := Saturate(v, reg, SaturationConfig{
		Workers: 2, TotalOps: 40, ObjectBytes: 4 << 10, Preload: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 40 || res.Puts+res.Gets+res.Scrubs != res.Ops {
		t.Fatalf("ops accounting off: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors on a healthy cluster", res.Errors)
	}
	if res.OpsPerSec <= 0 || res.ElapsedNs <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	// Latency percentiles come from the obs registry, so a put-bearing
	// run must have a populated vault.put.ok histogram.
	if res.Puts > 0 && res.PutLatency.Count == 0 {
		t.Fatalf("obs-derived put latency missing: %+v", res.PutLatency)
	}
	if res.Gets > 0 && (res.GetLatency.Count == 0 || res.GetLatency.P99Ns <= 0) {
		t.Fatalf("obs-derived get latency missing: %+v", res.GetLatency)
	}
}

func TestSaturateSharedIDs(t *testing.T) {
	v, reg := benchVault(t, nil)
	res, err := Saturate(v, reg, SaturationConfig{
		Workers: 4, TotalOps: 60, ObjectBytes: 2 << 10, Preload: 4, Seed: 3,
		SharedIDs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Colliding puts lose to ErrExists by design; reads must stay exact.
	if res.Errors != 0 {
		t.Fatalf("%d read/scrub errors under shared-id contention", res.Errors)
	}
}

func TestSaturateBatchedRoundTrip(t *testing.T) {
	v, reg := benchVault(t, nil)
	res, err := Saturate(v, reg, SaturationConfig{
		Workers: 4, TotalOps: 48, ObjectBytes: SmallObjectBytes, Preload: 2,
		Mix: SmallObjectMix(), Seed: 9, Batched: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors on a healthy cluster", res.Errors)
	}
	// Batched members must read back bit-exact through the plain vault
	// surface after the driver's shared Batcher is gone.
	id := "w000-000000"
	data, err := v.Get(id)
	if err != nil {
		t.Fatalf("get batched member %s: %v", id, err)
	}
	if !bytesEqual(data, payloadFor(id, SmallObjectBytes)) {
		t.Fatalf("batched member %s read back wrong payload", id)
	}
}

func TestSaturateRejectsBadWorkers(t *testing.T) {
	v, reg := benchVault(t, nil)
	if _, err := Saturate(v, reg, SaturationConfig{Workers: 0}); err == nil {
		t.Fatal("workers=0 accepted")
	}
}

func TestSweepWorkersAndScalingX(t *testing.T) {
	cfg := SaturationConfig{TotalOps: 24, ObjectBytes: 2 << 10, Preload: 2, Seed: 5}
	runs, err := SweepWorkers([]int{1, 2}, cfg, func() (*core.Vault, *obs.Registry, error) {
		reg := obs.NewRegistry()
		c := cluster.New(8, nil)
		c.UseRegistry(reg)
		v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
			core.WithGroup(group.Test()), core.WithRegistry(reg))
		return v, reg, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Workers != 1 || runs[1].Workers != 2 {
		t.Fatalf("sweep shape wrong: %+v", runs)
	}
	if x := ScalingX(runs, 1, 2); x <= 0 {
		t.Fatalf("ScalingX = %v", x)
	}
	if x := ScalingX(runs, 4, 8); x != 0 {
		t.Fatalf("ScalingX for absent worker counts = %v, want 0", x)
	}
}

// TestStripeScalingGate is the acceptance gate for the striped-locking
// design: with per-shard I/O latency injected (making the workload
// I/O-bound, as a real dispersal is), W=16 workers on distinct objects
// must push ≥ 2× the throughput of W=1. On a box without real
// parallelism the ratio still holds for sleep-bound work, but the gate
// is specified for ≥ 4 cores, so it skips below that.
func TestStripeScalingGate(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: stripe-scaling gate needs >= 4 cores", runtime.GOMAXPROCS(0))
	}
	plan := &cluster.FaultPlan{
		Seed:    1,
		Default: cluster.NodeFaults{Latency: 300 * time.Microsecond},
	}
	cfg := SaturationConfig{
		TotalOps: 192, ObjectBytes: 4 << 10, Preload: 4, Seed: 11,
	}
	runs, err := SweepWorkers([]int{1, 16}, cfg, func() (*core.Vault, *obs.Registry, error) {
		reg := obs.NewRegistry()
		c := cluster.New(8, nil)
		c.UseRegistry(reg)
		c.SetFaultPlan(plan)
		v, err := core.NewVault(c, core.Erasure{K: 4, N: 8},
			core.WithGroup(group.Test()), core.WithRegistry(reg))
		return v, reg, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if x := ScalingX(runs, 1, 16); x < 2 {
		t.Errorf("W=16 throughput only %.2fx of W=1, want >= 2x (striping regression?)", x)
	}
}

// TestSmallObjectBatchingGate is the acceptance gate for the group-commit
// write batcher: 4 KiB put-only ingest at W=16 through a shared Batcher
// must push ≥ 2× the throughput of the same workload through plain
// Vault.Put. The win is amortisation of fixed per-put costs (signature,
// integrity chain, per-stripe staging round trips) across a whole batch,
// not parallelism — so the gate pins GOMAXPROCS=1 for its duration to
// measure exactly that regime on any host; multicore scaling of
// independent puts is TestStripeScalingGate's business.
func TestSmallObjectBatchingGate(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	cfg := SaturationConfig{
		Workers:     16,
		TotalOps:    960,
		ObjectBytes: SmallObjectBytes,
		Preload:     2,
		Mix:         SmallObjectMix(),
		Seed:        17,
	}
	var ops [2]float64
	for i, batched := range []bool{false, true} {
		c := cfg
		c.Batched = batched
		v, reg := benchVault(t, nil)
		res, err := Saturate(v, reg, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("batched=%v: %d errors on a healthy cluster", batched, res.Errors)
		}
		ops[i] = res.OpsPerSec
	}
	if x := ops[1] / ops[0]; x < 2 {
		t.Errorf("batched 4 KiB ingest only %.2fx of unbatched at W=16, want >= 2x (group-commit regression?)", x)
	}
}
