package workload

// Networked saturation: the same closed-loop shape as Saturate, but
// every operation crosses the wire through the archive service's HTTP
// API (internal/api) via its Go client — serialisation, routing,
// tenant admission, and streaming transfer included. Run against a
// loopback server it measures the service stack's overhead over the
// in-process vault path; the latency digests come from the server's
// api.put.ns / api.get.ns histograms, so the harness measures exactly
// the instrumented handler path.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"securearchive/internal/api"
	"securearchive/internal/api/client"
	"securearchive/internal/obs"
)

// bgCtx is the background context every driver op runs under — the
// sweep has no caller to cancel it.
var bgCtx = context.Background()

// NetworkConfig parameterises one closed-loop networked run.
type NetworkConfig struct {
	// BaseURL is the service root (e.g. "http://127.0.0.1:PORT").
	BaseURL string
	// Tenant namespaces the run's objects ("" = server default).
	Tenant string
	// Workers, TotalOps, ObjectBytes, Preload, Mix, Seed mirror
	// SaturationConfig.
	Workers     int
	TotalOps    int
	ObjectBytes int
	Preload     int
	Mix         OpMix
	Seed        int64
}

func (cfg NetworkConfig) normalize() (NetworkConfig, error) {
	if cfg.BaseURL == "" {
		return cfg, fmt.Errorf("%w: empty base URL", ErrBadParams)
	}
	if cfg.Workers < 1 {
		return cfg, fmt.Errorf("%w: workers=%d", ErrBadParams, cfg.Workers)
	}
	if cfg.TotalOps < cfg.Workers {
		cfg.TotalOps = cfg.Workers
	}
	if cfg.ObjectBytes <= 0 {
		cfg.ObjectBytes = 32 << 10
	}
	if cfg.Preload <= 0 {
		cfg.Preload = 8
	}
	if cfg.Mix.Put <= 0 && cfg.Mix.Get <= 0 && cfg.Mix.Scrub <= 0 {
		cfg.Mix = DefaultMix()
	}
	return cfg, nil
}

// NetworkResult reports one closed-loop networked run. Latency digests
// are end-to-end handler times from the service's api.*.ns histograms.
type NetworkResult struct {
	Workers     int     `json:"workers"`
	Ops         int64   `json:"ops"`
	Puts        int64   `json:"puts"`
	Gets        int64   `json:"gets"`
	Scrubs      int64   `json:"scrubs"`
	Errors      int64   `json:"errors"`
	RateLimited int64   `json:"rate_limited"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	PutMBPerSec float64 `json:"put_mb_per_sec"`
	GetMBPerSec float64 `json:"get_mb_per_sec"`
	// PutLatency/GetLatency summarise api.put.ns / api.get.ns — request
	// receipt to response flush, streaming transfer included.
	PutLatency LatencySummary `json:"put_latency"`
	GetLatency LatencySummary `json:"get_latency"`
	// StreamPeakBytes is the server's vault.stream.peak_buffered_bytes
	// after the run — the in-memory high-water mark of all concurrent
	// streaming uploads, the number that must stay O(workers × chunk).
	StreamPeakBytes int64 `json:"stream_peak_bytes"`
}

// SaturateNetwork drives the service at cfg.BaseURL with closed-loop
// workers issuing puts/gets/scrubs through the HTTP client. reg must be
// the registry the server's api.Server and vault report into; it is
// Reset at the start of the measured window. Op errors are counted,
// not fatal, except during preload. Get payloads are verified against
// the deterministic put payloads; a mismatch counts as an error.
func SaturateNetwork(reg *obs.Registry, cfg NetworkConfig) (*NetworkResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	// One shared transport sized to the worker count keeps loopback
	// connections reused instead of churning through ephemeral ports.
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Workers + 2,
		MaxIdleConnsPerHost: cfg.Workers + 2,
		IdleConnTimeout:     30 * time.Second,
	}}
	defer httpc.CloseIdleConnections()
	mkClient := func() *client.Client {
		cl := client.New(cfg.BaseURL)
		cl.Tenant = cfg.Tenant
		cl.HTTPClient = httpc
		return cl
	}

	pre := mkClient()
	preIDs := make([]string, cfg.Preload)
	for i := range preIDs {
		preIDs[i] = fmt.Sprintf("pre-%04d", i)
		if _, err := pre.PutBytes(bgCtx, preIDs[i], payloadFor(preIDs[i], cfg.ObjectBytes)); err != nil {
			return nil, fmt.Errorf("workload: net preload %s: %w", preIDs[i], err)
		}
	}

	var (
		puts, gets, scrubs, errCount, limited atomic.Int64
		wg                                    sync.WaitGroup
	)
	perWorker := cfg.TotalOps / cfg.Workers
	total := cfg.Mix.Put + cfg.Mix.Get + cfg.Mix.Scrub

	reg.Reset()
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := mkClient()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			seq := 0
			note := func(err error) {
				if err == nil {
					return
				}
				if ae, ok := err.(*api.Error); ok && ae.Code == api.CodeRateLimited {
					limited.Add(1)
				}
				errCount.Add(1)
			}
			for op := 0; op < perWorker; op++ {
				u := rng.Float64() * total
				switch {
				case u < cfg.Mix.Put:
					id := fmt.Sprintf("w%03d-%06d", w, seq)
					seq++
					_, err := cl.Put(bgCtx, id, bytes.NewReader(payloadFor(id, cfg.ObjectBytes)))
					puts.Add(1)
					note(err)
				case u < cfg.Mix.Put+cfg.Mix.Get:
					id := preIDs[rng.Intn(len(preIDs))]
					data, err := cl.GetBytes(bgCtx, id)
					gets.Add(1)
					if err != nil {
						note(err)
					} else if !bytesEqual(data, payloadFor(id, cfg.ObjectBytes)) {
						errCount.Add(1)
					}
				default:
					id := preIDs[rng.Intn(len(preIDs))]
					_, err := cl.Scrub(bgCtx, id)
					scrubs.Add(1)
					note(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	res := &NetworkResult{
		Workers:     cfg.Workers,
		Puts:        puts.Load(),
		Gets:        gets.Load(),
		Scrubs:      scrubs.Load(),
		Errors:      errCount.Load(),
		RateLimited: limited.Load(),
		ElapsedNs:   elapsed.Nanoseconds(),
		PutLatency:  summarize(snap.Histograms["api.put.ns"]),
		GetLatency:  summarize(snap.Histograms["api.get.ns"]),
	}
	res.Ops = res.Puts + res.Gets + res.Scrubs
	if s := elapsed.Seconds(); s > 0 {
		res.OpsPerSec = float64(res.Ops) / s
		res.PutMBPerSec = float64(snap.Counters["api.bytes_in"]) / s / 1e6
		res.GetMBPerSec = float64(snap.Counters["api.bytes_out"]) / s / 1e6
	}
	return res, nil
}

// NetworkCell is one fresh service instance for a sweep cell: the
// sweep drives BaseURL, reads Registry, and calls Shutdown when done.
type NetworkCell struct {
	BaseURL  string
	Registry *obs.Registry
	// StreamPeak reports the server vault's streaming high-water mark
	// (nil when the caller doesn't track it).
	StreamPeak func() int64
	Shutdown   func()
}

// SweepNetworkWorkers runs SaturateNetwork at each worker count, each
// against a fresh service built by mk — no cross-cell connection
// warmth, leftover objects, or tenant usage.
func SweepNetworkWorkers(workerCounts []int, cfg NetworkConfig, mk func() (*NetworkCell, error)) ([]*NetworkResult, error) {
	var out []*NetworkResult
	for _, w := range workerCounts {
		cell, err := mk()
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Workers = w
		c.BaseURL = cell.BaseURL
		res, err := SaturateNetwork(cell.Registry, c)
		if err == nil && cell.StreamPeak != nil {
			res.StreamPeakBytes = cell.StreamPeak()
		}
		cell.Shutdown()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// NetScalingX mirrors ScalingX for networked runs.
func NetScalingX(results []*NetworkResult, wLow, wHigh int) float64 {
	var lo, hi float64
	for _, r := range results {
		switch r.Workers {
		case wLow:
			lo = r.OpsPerSec
		case wHigh:
			hi = r.OpsPerSec
		}
	}
	if lo <= 0 {
		return 0
	}
	return hi / lo
}
