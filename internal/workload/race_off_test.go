//go:build !race

package workload

// raceEnabled reports whether the race detector is active; latency
// comparisons skip under it (instrumentation overhead swamps the
// timing signal).
const raceEnabled = false
