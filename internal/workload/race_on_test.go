//go:build race

package workload

const raceEnabled = true
