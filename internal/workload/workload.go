// Package workload generates synthetic archival workloads for the
// benchmark harness: object-size mixes and ingest/read traces modelled on
// the archival-storage characterisation literature the paper cites (the
// CERN EOS analysis, HPSS profiling) — a heavy-tailed size distribution
// dominated by large sequential objects, write-once read-rarely access,
// and bursty recall.
//
// Everything is deterministic under a seed so experiment runs are
// reproducible, and sizes are generated without holding object payloads
// in memory (payloads are produced on demand from the seed).
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// ErrBadParams reports invalid generator parameters.
var ErrBadParams = errors.New("workload: invalid parameters")

// SizeClass is one component of the object-size mixture.
type SizeClass struct {
	Name string
	// Weight is the relative frequency of the class.
	Weight float64
	// MedianBytes and Sigma parameterise a log-normal size distribution.
	MedianBytes float64
	Sigma       float64
}

// ArchivalMix is a three-class mixture calibrated to archival-system
// characterisations: mostly metadata-ish small files by count, bytes
// dominated by large scientific/media objects.
func ArchivalMix() []SizeClass {
	return []SizeClass{
		{Name: "small", Weight: 0.55, MedianBytes: 64 << 10, Sigma: 1.2},
		{Name: "medium", Weight: 0.35, MedianBytes: 8 << 20, Sigma: 1.0},
		{Name: "large", Weight: 0.10, MedianBytes: 512 << 20, Sigma: 0.8},
	}
}

// Object is one generated archival object descriptor.
type Object struct {
	ID    string
	Class string
	Size  int64
}

// Generator produces a deterministic object stream. It is safe for
// concurrent use: the rng is locally seeded (never the shared math/rand
// global source, whose cross-package interleaving would destroy seed
// reproducibility) and mu guards it together with the object counter.
// The stream order is deterministic for a fixed call sequence;
// concurrent callers partition it operation-by-operation.
type Generator struct {
	mu      sync.Mutex
	rng     *rand.Rand
	classes []SizeClass
	cum     []float64
	next    int
	// MinSize/MaxSize clamp generated sizes.
	MinSize, MaxSize int64
}

// NewGenerator builds a generator over the size mixture with the given
// seed. Weights must be positive.
func NewGenerator(classes []SizeClass, seed int64) (*Generator, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadParams)
	}
	total := 0.0
	for _, c := range classes {
		if c.Weight <= 0 || c.MedianBytes <= 0 || c.Sigma <= 0 {
			return nil, fmt.Errorf("%w: class %q", ErrBadParams, c.Name)
		}
		total += c.Weight
	}
	cum := make([]float64, len(classes))
	acc := 0.0
	for i, c := range classes {
		acc += c.Weight / total
		cum[i] = acc
	}
	return &Generator{
		rng:     rand.New(rand.NewSource(seed)),
		classes: classes,
		cum:     cum,
		MinSize: 1,
		MaxSize: 16 << 30,
	}, nil
}

// Next returns the next object descriptor.
func (g *Generator) Next() Object {
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.rng.Float64()
	idx := len(g.classes) - 1
	for i, c := range g.cum {
		if u <= c {
			idx = i
			break
		}
	}
	cl := g.classes[idx]
	// Log-normal: size = median * exp(sigma * N(0,1)).
	size := int64(cl.MedianBytes * math.Exp(cl.Sigma*g.rng.NormFloat64()))
	if size < g.MinSize {
		size = g.MinSize
	}
	if size > g.MaxSize {
		size = g.MaxSize
	}
	g.next++
	return Object{
		ID:    fmt.Sprintf("obj-%08d", g.next),
		Class: cl.Name,
		Size:  size,
	}
}

// Payload materialises a deterministic pseudo-random payload for an
// object, capped at maxBytes (simulators rarely need whole large
// objects). The bytes depend only on the object ID hash and the
// generator's seed lineage, so repeated runs agree.
func (g *Generator) Payload(o Object, maxBytes int) []byte {
	n := int(o.Size)
	if n > maxBytes {
		n = maxBytes
	}
	r := rand.New(rand.NewSource(int64(hashString(o.ID))))
	buf := make([]byte, n)
	r.Read(buf)
	return buf
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Trace summarises a generated batch.
type Trace struct {
	Objects    []Object
	TotalBytes int64
	ByClass    map[string]int
}

// Batch generates count objects and their summary.
func (g *Generator) Batch(count int) Trace {
	tr := Trace{ByClass: make(map[string]int)}
	for i := 0; i < count; i++ {
		o := g.Next()
		tr.Objects = append(tr.Objects, o)
		tr.TotalBytes += o.Size
		tr.ByClass[o.Class]++
	}
	return tr
}

// RecallPattern models read access: archival recall is rare and bursty.
// Given a batch, it returns the indices read during a recall event:
// a contiguous run (project retrieval) starting at a random offset,
// covering frac of the batch.
func (g *Generator) RecallPattern(batchLen int, frac float64) ([]int, error) {
	if frac <= 0 || frac > 1 || batchLen <= 0 {
		return nil, fmt.Errorf("%w: frac=%v len=%d", ErrBadParams, frac, batchLen)
	}
	n := int(float64(batchLen) * frac)
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	start := g.rng.Intn(batchLen)
	g.mu.Unlock()
	out := make([]int, n)
	for i := range out {
		out[i] = (start + i) % batchLen
	}
	return out, nil
}
