package workload

import (
	"bytes"
	"errors"
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(ArchivalMix(), 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(ArchivalMix(), 7)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
	g3, _ := NewGenerator(ArchivalMix(), 8)
	diff := false
	for i := 0; i < 100; i++ {
		if g3.Next().Size != g2.Next().Size {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMixtureProportions(t *testing.T) {
	g, _ := NewGenerator(ArchivalMix(), 3)
	tr := g.Batch(10000)
	// small ≈ 55%, medium ≈ 35%, large ≈ 10%, loose bounds.
	if f := float64(tr.ByClass["small"]) / 10000; f < 0.50 || f > 0.60 {
		t.Fatalf("small fraction %.3f", f)
	}
	if f := float64(tr.ByClass["large"]) / 10000; f < 0.07 || f > 0.13 {
		t.Fatalf("large fraction %.3f", f)
	}
}

func TestBytesDominatedByLargeClass(t *testing.T) {
	g, _ := NewGenerator(ArchivalMix(), 5)
	tr := g.Batch(5000)
	var largeBytes int64
	for _, o := range tr.Objects {
		if o.Class == "large" {
			largeBytes += o.Size
		}
	}
	// The archival signature: ~10% of objects carry most of the bytes.
	if f := float64(largeBytes) / float64(tr.TotalBytes); f < 0.5 {
		t.Fatalf("large objects carry only %.2f of bytes", f)
	}
}

func TestSizesClamped(t *testing.T) {
	g, _ := NewGenerator(ArchivalMix(), 11)
	g.MinSize = 1024
	g.MaxSize = 1 << 20
	for i := 0; i < 1000; i++ {
		o := g.Next()
		if o.Size < 1024 || o.Size > 1<<20 {
			t.Fatalf("size %d outside clamp", o.Size)
		}
	}
}

func TestPayloadDeterministicAndCapped(t *testing.T) {
	g, _ := NewGenerator(ArchivalMix(), 13)
	o := g.Next()
	p1 := g.Payload(o, 4096)
	p2 := g.Payload(o, 4096)
	if !bytes.Equal(p1, p2) {
		t.Fatal("payload not deterministic")
	}
	if len(p1) > 4096 {
		t.Fatal("payload exceeds cap")
	}
	o2 := g.Next()
	if bytes.Equal(g.Payload(o2, 4096)[:64], p1[:64]) {
		t.Fatal("different objects share payloads")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewGenerator(nil, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("no classes: %v", err)
	}
	if _, err := NewGenerator([]SizeClass{{Weight: 0, MedianBytes: 1, Sigma: 1}}, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero weight: %v", err)
	}
	g, _ := NewGenerator(ArchivalMix(), 1)
	if _, err := g.RecallPattern(0, 0.5); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad recall params: %v", err)
	}
	if _, err := g.RecallPattern(10, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("zero frac: %v", err)
	}
}

func TestRecallPattern(t *testing.T) {
	g, _ := NewGenerator(ArchivalMix(), 17)
	idx, err := g.RecallPattern(100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 25 {
		t.Fatalf("recall size %d, want 25", len(idx))
	}
	// Contiguous modulo wrap.
	for i := 1; i < len(idx); i++ {
		if idx[i] != (idx[i-1]+1)%100 {
			t.Fatal("recall not contiguous")
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	g, _ := NewGenerator(ArchivalMix(), 19)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		o := g.Next()
		if seen[o.ID] {
			t.Fatalf("duplicate ID %s", o.ID)
		}
		seen[o.ID] = true
	}
}
