package workload

// Zipfian index selection for skewed read mixes. Real archive read
// traffic is heavily skewed — a small hot set absorbs most retrievals
// (the regime the vault's read cache exists for) — so the saturation
// driver can aim its Gets through a ZipfMix instead of the uniform
// draw. Each worker owns a locally-seeded generator: sequences are
// deterministic per (seed, s, n) and replay byte-identically across
// runs, which is what lets the cache-hit gate and the papereval sweep
// pin exact expectations.

import (
	"fmt"
	"math/rand"
)

// ZipfMix draws ranks in [0, n) with zipfian skew s: rank 0 is the
// hottest, P(rank=k) ∝ 1/(k+1)^s. s must be > 1 (the stdlib generator's
// domain). A ZipfMix is NOT safe for concurrent use — give each worker
// its own, seeded distinctly.
type ZipfMix struct {
	z *rand.Zipf
	n int
}

// NewZipfMix builds a deterministic zipfian rank source over n ranks
// with skew s > 1, seeded locally (no global rand state involved).
func NewZipfMix(seed int64, s float64, n int) (*ZipfMix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: zipf n=%d", ErrBadParams, n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("%w: zipf s=%v (need s > 1)", ErrBadParams, s)
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfMix{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}, nil
}

// Next returns the next rank in [0, n).
func (m *ZipfMix) Next() int { return int(m.z.Uint64()) }

// N returns the rank-space size.
func (m *ZipfMix) N() int { return m.n }
