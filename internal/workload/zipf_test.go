package workload

import (
	"runtime"
	"testing"
	"time"

	"securearchive/internal/cluster"
	"securearchive/internal/core"
	"securearchive/internal/group"
	"securearchive/internal/obs"
)

func TestZipfMixRejectsBadParams(t *testing.T) {
	if _, err := NewZipfMix(1, 1.0, 8); err == nil {
		t.Fatal("s=1.0 accepted (zipf needs s > 1)")
	}
	if _, err := NewZipfMix(1, 0.5, 8); err == nil {
		t.Fatal("s=0.5 accepted")
	}
	if _, err := NewZipfMix(1, 1.5, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestZipfMixDeterministicReplay pins the property the cache gate and
// the papereval sweep rely on: the rank sequence is a pure function of
// (seed, s, n) — same seed replays byte-identically, different seeds
// diverge.
func TestZipfMixDeterministicReplay(t *testing.T) {
	const n, draws = 64, 2000
	a, err := NewZipfMix(42, 1.3, n)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewZipfMix(42, 1.3, n)
	c, _ := NewZipfMix(43, 1.3, n)
	diverged := false
	for i := 0; i < draws; i++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra != rb {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, ra, rb)
		}
		if ra < 0 || ra >= n {
			t.Fatalf("draw %d: rank %d out of [0, %d)", i, ra, n)
		}
		if ra != rc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestZipfMixDistribution pins the shape: rank 0 is by far the hottest
// and a small head absorbs most draws — the skew that makes a bounded
// cache worth having.
func TestZipfMixDistribution(t *testing.T) {
	const n, draws = 64, 20000
	zm, err := NewZipfMix(7, 1.5, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[zm.Next()]++
	}
	// For s=1.5 the exact head probabilities are ~0.39 for rank 0 and
	// ~0.027 for rank 10; these thresholds leave wide sampling slack.
	if counts[0] < draws/4 {
		t.Errorf("rank 0 drew %d/%d, want >= 1/4 of draws", counts[0], draws)
	}
	if counts[10] > 0 && counts[0] < 5*counts[10] {
		t.Errorf("rank 0 (%d) not >> rank 10 (%d)", counts[0], counts[10])
	}
	head := 0
	for k := 0; k < 8; k++ {
		head += counts[k]
	}
	if float64(head) < 0.6*draws {
		t.Errorf("top-8 ranks drew %d/%d, want >= 60%%", head, draws)
	}
}

// cacheVault builds a vault for the skewed-read tests; cacheBytes <= 0
// leaves the read cache off.
func cacheVault(t *testing.T, plan *cluster.FaultPlan, cacheBytes int64) (*core.Vault, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c := cluster.New(8, nil)
	c.UseRegistry(reg)
	if plan != nil {
		c.SetFaultPlan(plan)
	}
	opts := []core.VaultOption{core.WithGroup(group.Test()), core.WithRegistry(reg)}
	if cacheBytes > 0 {
		opts = append(opts, core.WithReadCache(cacheBytes))
	}
	v, err := core.NewVault(c, core.Erasure{K: 4, N: 8}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v, reg
}

// TestSaturateReadSkew wires the zipfian draw through the driver: a
// skewed read-only run against a cached vault must account every Get as
// exactly one cache probe, and a single-worker run must replay with
// identical cache accounting — the driver-level determinism the sweep's
// comparability rests on.
func TestSaturateReadSkew(t *testing.T) {
	cfg := SaturationConfig{
		Workers: 1, TotalOps: 200, ObjectBytes: 2 << 10, Preload: 16,
		Mix: OpMix{Get: 1}, Seed: 21, ReadSkew: 1.2,
	}
	var first *SaturationResult
	for run := 0; run < 2; run++ {
		v, reg := cacheVault(t, nil, 1<<20)
		res, err := Saturate(v, reg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("run %d: %d errors on a healthy cluster", run, res.Errors)
		}
		if res.CacheHits+res.CacheMisses != res.Gets {
			t.Fatalf("run %d: %d hits + %d misses != %d gets", run, res.CacheHits, res.CacheMisses, res.Gets)
		}
		if res.CacheHits == 0 {
			t.Fatalf("run %d: skewed reads over a fully-cacheable set produced no hits", run)
		}
		if first == nil {
			first = res
		} else if res.CacheHits != first.CacheHits || res.CacheMisses != first.CacheMisses || res.Gets != first.Gets {
			t.Fatalf("replay diverged: run0 %d/%d/%d vs run1 %d/%d/%d (hits/misses/gets)",
				first.CacheHits, first.CacheMisses, first.Gets, res.CacheHits, res.CacheMisses, res.Gets)
		}
	}

	// Invalid skew values in (0, 1] must be rejected, not silently
	// treated as uniform.
	v, reg := cacheVault(t, nil, 1<<20)
	bad := cfg
	bad.ReadSkew = 0.9
	if _, err := Saturate(v, reg, bad); err == nil {
		t.Fatal("ReadSkew=0.9 accepted")
	}
}

// TestCacheHitGate is the acceptance gate for the read cache: a
// zipfian (s=1.1) read-heavy workload over a preloaded set must hit the
// cache at least half the time, and the cached run's p99 Get latency
// must beat the uncached run's under injected per-node I/O latency (the
// regime where skipping the stripe fetch is the point). Like the other
// perf gates it is specified for >= 4 cores and skips below.
func TestCacheHitGate(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: cache-hit gate needs >= 4 cores", runtime.GOMAXPROCS(0))
	}
	plan := &cluster.FaultPlan{
		Seed:    1,
		Default: cluster.NodeFaults{Latency: 200 * time.Microsecond},
	}
	cfg := SaturationConfig{
		Workers: 16, TotalOps: 1600, ObjectBytes: 4 << 10, Preload: 64,
		Mix: OpMix{Get: 1}, Seed: 31, ReadSkew: 1.1,
	}
	var uncached, cached *SaturationResult
	for _, cacheBytes := range []int64{0, 128 << 10} {
		v, reg := cacheVault(t, plan, cacheBytes)
		res, err := Saturate(v, reg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("cache=%d: %d errors on a healthy cluster", cacheBytes, res.Errors)
		}
		if cacheBytes == 0 {
			uncached = res
		} else {
			cached = res
		}
	}
	if uncached.CacheHits != 0 {
		t.Errorf("uncached run reported %d cache hits", uncached.CacheHits)
	}
	if cached.CacheHitRatio < 0.5 {
		t.Errorf("cache hit ratio %.2f at zipf s=1.1, want >= 0.5 (admission or eviction regression?)",
			cached.CacheHitRatio)
	}
	if raceEnabled {
		t.Logf("race detector on: skipping the p99 comparison (cached %.0fns, uncached %.0fns)",
			cached.GetLatency.P99Ns, uncached.GetLatency.P99Ns)
		return
	}
	if cached.GetLatency.P99Ns >= uncached.GetLatency.P99Ns {
		t.Errorf("cached p99 %.0fns not below uncached p99 %.0fns",
			cached.GetLatency.P99Ns, uncached.GetLatency.P99Ns)
	}
}
