// Workload-driven benchmarks: realistic archival object mixes (heavy-
// tailed sizes, write-once) ingested through representative systems, and
// the recall pattern replayed against them. These complement the fixed-
// size per-table benches with the mixed traffic a deployment sees.
package securearchive_test

import (
	"crypto/rand"
	"fmt"
	"testing"

	"securearchive/internal/cluster"
	"securearchive/internal/group"
	"securearchive/internal/systems"
	"securearchive/internal/workload"
)

// benchIngest pushes a 64-object archival mix (payloads capped at 256 KiB
// to keep iterations bounded) through a system and reports achieved
// ingest throughput.
func benchIngest(b *testing.B, mk func(c *cluster.Cluster) (systems.Archive, error)) {
	gen, err := workload.NewGenerator(workload.ArchivalMix(), 1)
	if err != nil {
		b.Fatal(err)
	}
	trace := gen.Batch(64)
	payloads := make([][]byte, len(trace.Objects))
	var total int64
	for i, o := range trace.Objects {
		payloads[i] = gen.Payload(o, 256<<10)
		total += int64(len(payloads[i]))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cluster.New(8, nil)
		sys, err := mk(c)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j, o := range trace.Objects {
			if _, err := sys.Store(fmt.Sprintf("%s-%d", o.ID, i), payloads[j], rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIngestMixPOTSHARDS(b *testing.B) {
	benchIngest(b, func(c *cluster.Cluster) (systems.Archive, error) {
		return systems.NewPOTSHARDS(c, 6, 3)
	})
}

func BenchmarkIngestMixAONTRS(b *testing.B) {
	benchIngest(b, func(c *cluster.Cluster) (systems.Archive, error) {
		return systems.NewAONTRS(c, 4, 6)
	})
}

func BenchmarkIngestMixCloudAES(b *testing.B) {
	benchIngest(b, func(c *cluster.Cluster) (systems.Archive, error) {
		return systems.NewCloudAES(c, 4, 2)
	})
}

func BenchmarkIngestMixArchiveSafeLT(b *testing.B) {
	benchIngest(b, func(c *cluster.Cluster) (systems.Archive, error) {
		return systems.NewArchiveSafeLT(c, nil, 4, 2)
	})
}

// BenchmarkRecallMixVSR replays a bursty recall (25% contiguous project
// retrieval) against a renewing archive.
func BenchmarkRecallMixVSR(b *testing.B) {
	gen, err := workload.NewGenerator(workload.ArchivalMix(), 2)
	if err != nil {
		b.Fatal(err)
	}
	trace := gen.Batch(64)
	c := cluster.New(8, nil)
	sys, err := systems.NewVSRArchive(c, 6, 3)
	if err != nil {
		b.Fatal(err)
	}
	refs := make([]*systems.Ref, len(trace.Objects))
	var recallBytes int64
	payloads := make([][]byte, len(trace.Objects))
	for i, o := range trace.Objects {
		payloads[i] = gen.Payload(o, 256<<10)
		ref, err := sys.Store(o.ID, payloads[i], rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	recall, err := gen.RecallPattern(len(refs), 0.25)
	if err != nil {
		b.Fatal(err)
	}
	for _, idx := range recall {
		recallBytes += int64(len(payloads[idx]))
	}
	b.SetBytes(recallBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idx := range recall {
			if _, err := sys.Retrieve(refs[idx]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIngestMixHasDPSSKeys ingests a key-management workload: one
// escrowed key per data object in the mix.
func BenchmarkIngestMixHasDPSSKeys(b *testing.B) {
	key := []byte("a 28-byte per-object key....")
	b.SetBytes(int64(len(key) * 16))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cluster.New(8, nil)
		sys, err := systems.NewHasDPSS(c, 6, 3, group.Test())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j := 0; j < 16; j++ {
			if _, err := sys.Store(fmt.Sprintf("key-%d-%d", i, j), key, rand.Reader); err != nil {
				b.Fatal(err)
			}
		}
	}
}
